package noised

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/clarinet"
	"repro/internal/colblob"
	"repro/internal/delaynoise"
	"repro/internal/noiseerr"
	"repro/internal/resilience"
	"repro/internal/workload"
)

// Summary is the final NDJSON line of an analyze stream: the request's
// aggregate outcome. Its wrapper object {"summary": ...} has no "net"
// field, so journal readers skip it and stream readers can tell it from
// a per-net record.
type Summary struct {
	RequestID string `json:"request_id,omitempty"`
	Nets      int    `json:"nets"`
	OK        int    `json:"ok"`
	Failed    int    `json:"failed"`
	Canceled  int    `json:"canceled"`
	Resumed   int    `json:"resumed"`
	ElapsedMS int64  `json:"elapsed_ms"`
	// Deadline marks a stream cut short by the per-request timeout;
	// Draining marks one that ran during shutdown. Both are retry
	// hints for the client.
	Deadline bool `json:"deadline,omitempty"`
	Draining bool `json:"draining,omitempty"`
}

// StreamLine is one NDJSON line of the analyze response: a per-net
// record (Net non-empty), a keepalive heartbeat (Heartbeat true, no
// other fields), or the terminal summary. Record consumers that predate
// heartbeats already skip them: a heartbeat line has an empty Net, the
// same shape they ignore for the summary.
type StreamLine struct {
	clarinet.JournalRecord
	Heartbeat bool     `json:"heartbeat,omitempty"`
	Summary   *Summary `json:"summary,omitempty"`
}

// Health is the /healthz payload.
type Health struct {
	Status       string         `json:"status"`
	Instance     string         `json:"instance"`
	Build        buildinfo.Info `json:"build"`
	UptimeS      float64        `json:"uptime_s"`
	Draining     bool           `json:"draining"`
	Inflight     int64          `json:"inflight"`
	QueueDepth   int64          `json:"queue_depth"`
	TablesCached int            `json:"tables_cached"`
	NetsAnalyzed int64          `json:"nets_analyzed"`
}

// InstanceHeader carries the server's random per-process identity on
// every analyze, healthz, and readyz response. The gateway compares it
// across probes: a changed instance behind the same address means the
// replica restarted, not blipped.
const InstanceHeader = "X-Noised-Instance"

// requestIDPattern bounds request IDs to filesystem- and header-safe
// names, since they become journal file names.
var requestIDPattern = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]{0,99}$`)

// ValidRequestID reports whether id is acceptable as a request_id —
// the gateway validates client IDs against the same rule before
// deriving its per-shard sub-request IDs from them.
func ValidRequestID(id string) bool { return requestIDPattern.MatchString(id) }

// retryAfterSeconds renders the Retry-After hint, rounding up so a
// sub-second hint does not collapse to "0".
func (s *Server) retryAfterSeconds() string {
	secs := int64((s.cfg.RetryAfter + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

// unavailable sheds one request: 503 with the Retry-After backoff hint.
func (s *Server) unavailable(w http.ResponseWriter, reason string) {
	w.Header().Set("Retry-After", s.retryAfterSeconds())
	http.Error(w, reason, http.StatusServiceUnavailable)
}

// analyzeOptions are the per-request knobs parsed from the query
// string, overlaid on the server's configured defaults.
type analyzeOptions struct {
	hold       delaynoise.HoldModel
	align      delaynoise.AlignMethod
	rescue     bool
	netTimeout time.Duration
	timeout    time.Duration
	requestID  string
}

// parseAnalyzeOptions validates the query parameters of an analyze
// request against the server defaults.
func (s *Server) parseAnalyzeOptions(r *http.Request) (analyzeOptions, error) {
	q := r.URL.Query()
	opt := analyzeOptions{
		hold:       s.cfg.Hold,
		align:      s.cfg.Align,
		rescue:     s.cfg.Resilience.Enabled(),
		netTimeout: s.cfg.NetTimeout,
	}
	if v := q.Get("hold"); v != "" {
		h, err := clarinet.ParseHold(v)
		if err != nil {
			return opt, err
		}
		opt.hold = h
	}
	if v := q.Get("align"); v != "" {
		a, err := clarinet.ParseAlign(v)
		if err != nil {
			return opt, err
		}
		opt.align = a
	}
	if v := q.Get("rescue"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			return opt, noiseerr.Invalidf("noised: bad rescue %q: %w", v, err)
		}
		opt.rescue = b
	}
	if v := q.Get("net_timeout"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d < 0 {
			return opt, noiseerr.Invalidf("noised: bad net_timeout %q", v)
		}
		opt.netTimeout = d
	}
	if v := q.Get("timeout"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d < 0 {
			return opt, noiseerr.Invalidf("noised: bad timeout %q", v)
		}
		opt.timeout = d
	}
	if cap := s.cfg.MaxRequestTimeout; cap > 0 {
		if opt.timeout <= 0 || opt.timeout > cap {
			opt.timeout = cap
		}
	}
	opt.requestID = r.Header.Get("X-Request-ID")
	if v := q.Get("request_id"); v != "" {
		opt.requestID = v
	}
	if opt.requestID != "" && !requestIDPattern.MatchString(opt.requestID) {
		return opt, noiseerr.Invalidf("noised: bad request_id %q (want %s)", opt.requestID, requestIDPattern)
	}
	return opt, nil
}

// streamWriter abstracts the analyze response encoding: NDJSON (the
// default) or the negotiated colblob binary framing. Both carry the
// same records — clarinet.ToWireRecord shapes them — so the two wires
// decode to identical values.
type streamWriter interface {
	record(rec clarinet.JournalRecord) error
	heartbeat() error
	summary(sum *Summary) error
}

// ndjsonStream writes the JSON lines wire: one StreamLine per record,
// the summary as the terminal line.
type ndjsonStream struct{ enc *json.Encoder }

func (s ndjsonStream) record(rec clarinet.JournalRecord) error { return s.enc.Encode(rec) }
func (s ndjsonStream) heartbeat() error {
	return s.enc.Encode(StreamLine{Heartbeat: true})
}
func (s ndjsonStream) summary(sum *Summary) error {
	return s.enc.Encode(StreamLine{Summary: sum})
}

// colblobStream writes the binary wire: each record as one colblob
// record frame (the same chained encoding the binary journal uses, so
// the codec's writer carries this stream's compression state), the
// summary as a summary frame with a JSON payload (it occurs once, so
// its schema stays shared with the NDJSON wire).
type colblobStream struct {
	w   io.Writer
	rw  clarinet.RecordWriter
	buf []byte
}

func newColblobStream(w io.Writer) *colblobStream {
	return &colblobStream{w: w, rw: clarinet.Binary.NewWriter(w)}
}

func (s *colblobStream) record(rec clarinet.JournalRecord) error {
	return s.rw.WriteRecord(rec)
}

func (s *colblobStream) heartbeat() error {
	s.buf = colblob.AppendFrame(s.buf[:0], colblob.FrameHeartbeat, nil)
	_, err := s.w.Write(s.buf)
	return err
}

func (s *colblobStream) summary(sum *Summary) error {
	payload, err := json.Marshal(sum)
	if err != nil {
		return err
	}
	s.buf = colblob.AppendFrame(s.buf[:0], colblob.FrameSummary, payload)
	_, err = s.w.Write(s.buf)
	return err
}

// negotiateStream picks the response encoding from the Accept header:
// a client that asks for application/x-noise-colblob gets the binary
// wire, everyone else the NDJSON default.
func negotiateStream(r *http.Request, w http.ResponseWriter) (streamWriter, string) {
	if strings.Contains(r.Header.Get("Accept"), clarinet.ContentTypeColblob) {
		return newColblobStream(w), clarinet.ContentTypeColblob
	}
	return ndjsonStream{enc: json.NewEncoder(w)}, clarinet.ContentTypeNDJSON
}

// handleAnalyze is POST /v1/analyze: admission, per-request deadline,
// the streamed batch, and the terminal summary.
func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	s.reg.Counter(mServerRequests).Inc()
	if s.adm.draining() {
		s.reg.Counter(mServerRejectedDraining).Inc()
		s.unavailable(w, "draining")
		return
	}
	opt, err := s.parseAnalyzeOptions(r)
	if err != nil {
		s.reg.Counter(mServerRejectedValidation).Inc()
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	names, cases, err := workload.Load(r.Body, s.session.Lib())
	if err != nil {
		s.reg.Counter(mServerRejectedValidation).Inc()
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if len(cases) == 0 {
		s.reg.Counter(mServerRejectedValidation).Inc()
		http.Error(w, "noised: empty case set", http.StatusBadRequest)
		return
	}
	if len(cases) > s.cfg.MaxNets {
		s.reg.Counter(mServerRejectedValidation).Inc()
		http.Error(w, fmt.Sprintf("noised: %d nets exceeds the per-request limit %d", len(cases), s.cfg.MaxNets),
			http.StatusRequestEntityTooLarge)
		return
	}

	// Admission: wait for an analysis slot in the bounded queue.
	switch err := s.adm.acquire(r.Context()); err {
	case nil:
		defer s.adm.release()
	case errQueueFull, errDraining:
		s.reg.Counter(mServerRejectedQueue).Inc()
		s.unavailable(w, err.Error())
		return
	default:
		// The client went away while queued; nothing to answer.
		return
	}

	tool, err := clarinet.New(nil, clarinet.Config{
		Session:    s.session,
		Hold:       opt.hold,
		Align:      opt.align,
		Workers:    s.cfg.Workers,
		Resilience: s.requestPolicy(opt),
		NetTimeout: opt.netTimeout,
	})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}

	// Server-side journal: replay a resubmitted request's completed
	// nets, then append the new ones.
	var prior map[string]clarinet.NetReport
	var journal *clarinet.Journal
	if path, ok := s.journalPath(opt.requestID); ok {
		prior, err = readPriorJournal(path)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		if len(prior) > 0 {
			s.reg.Counter(mServerRequestsResumed).Inc()
		}
		j, closeJournal, err := clarinet.OpenJournal(path, s.cfg.JournalCodec)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		defer closeJournal()
		journal = j
	}

	// The stream context: the request context (client disconnect)
	// bounded by the per-request deadline, and cancelable from the
	// write path so a broken pipe stops the pool promptly.
	ctx := r.Context()
	var cancel context.CancelFunc
	if opt.timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, opt.timeout)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	defer cancel()

	stream, contentType := negotiateStream(r, w)
	w.Header().Set("Content-Type", contentType)
	w.Header().Set("Cache-Control", "no-store")
	w.Header().Set(InstanceHeader, s.instance)
	if opt.requestID != "" {
		w.Header().Set("X-Request-ID", opt.requestID)
	}
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)
	// Push the header out now: the client should learn the request was
	// accepted before the first (possibly slow) net completes.
	rc.Flush()

	start := time.Now()
	sum := Summary{RequestID: opt.requestID, Nets: len(cases), Resumed: len(prior)}
	writeOK := true
	// Heartbeats keep an idle stream distinguishable from a dead
	// server: whenever no record has gone out for a full interval, an
	// empty keepalive line/frame does. The ticker resets on every real
	// record so a busy stream never carries them.
	var hbC <-chan time.Time
	var hb *time.Ticker
	if s.cfg.Heartbeat > 0 {
		hb = time.NewTicker(s.cfg.Heartbeat)
		defer hb.Stop()
		hbC = hb.C
	}
	reports := s.runBatch(tool, ctx, names, cases, prior, journal)
stream:
	for {
		select {
		case rep, ok := <-reports:
			if !ok {
				break stream
			}
			switch {
			case rep.Err == nil:
				sum.OK++
			case noiseerr.Class(rep.Err) == noiseerr.ErrCanceled:
				sum.Canceled++
			default:
				sum.Failed++
			}
			if !writeOK {
				continue // keep draining the pool after a broken pipe
			}
			s.reg.Counter(mServerNetsStreamed).Inc()
			if err := stream.record(clarinet.ToWireRecord(rep)); err != nil {
				writeOK = false
				cancel() // stop analyzing for a client that is gone
				continue
			}
			rc.Flush()
			if hb != nil {
				hb.Reset(s.cfg.Heartbeat)
			}
		case <-hbC:
			if !writeOK {
				continue
			}
			s.reg.Counter(mServerHeartbeats).Inc()
			if err := stream.heartbeat(); err != nil {
				writeOK = false
				cancel()
				continue
			}
			rc.Flush()
		}
	}
	if !writeOK {
		return
	}
	sum.ElapsedMS = time.Since(start).Milliseconds()
	sum.Deadline = ctx.Err() == context.DeadlineExceeded
	sum.Draining = s.adm.draining()
	if err := stream.summary(&sum); err == nil {
		rc.Flush()
	}
}

// requestPolicy resolves the resilience policy for one request: the
// configured ladder (or the default one) when rescue is on, nothing
// when the request disabled it.
func (s *Server) requestPolicy(opt analyzeOptions) resilience.Policy {
	if !opt.rescue {
		return resilience.Policy{}
	}
	if s.cfg.Resilience.Enabled() {
		return s.cfg.Resilience
	}
	return resilience.DefaultPolicy()
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	snap := s.reg.Snapshot()
	h := Health{
		Status:       "ok",
		Instance:     s.instance,
		Build:        buildinfo.Current(),
		UptimeS:      time.Since(s.started).Seconds(),
		Draining:     s.adm.draining(),
		Inflight:     snap.Gauges[mServerInflight],
		QueueDepth:   snap.Gauges[mServerQueueDepth],
		TablesCached: s.session.TableCount(),
		NetsAnalyzed: snap.Counters["nets.analyzed"],
	}
	if h.Draining {
		h.Status = "draining"
	}
	w.Header().Set(InstanceHeader, s.instance)
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(h)
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set(InstanceHeader, s.instance)
	if s.adm.draining() {
		s.unavailable(w, "draining")
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	s.reg.Snapshot().WriteJSON(w)
}
