package noised

import (
	"context"
	"errors"
	"log"
	"net"
	"net/http"
	"time"
)

// Serve accepts connections on ln until ctx is canceled, then drains
// gracefully: the server flips into drain mode (/readyz answers 503,
// new analyses are refused with Retry-After), in-flight streams run to
// completion, and only when they finish — or the DrainTimeout budget
// expires, whichever is first — does Serve return. On budget expiry the
// remaining connections are force-closed, which cancels their request
// contexts and stops their pools at the next solver checkpoint.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	srv := &http.Server{
		Handler:           s.mux,
		ReadHeaderTimeout: 10 * time.Second,
	}
	errCh := make(chan error, 1)
	// The acceptor is bounded by srv's lifetime: Serve returns once
	// Shutdown or Close runs below, the buffered send never blocks, and
	// both drain branches join it by receiving from errCh.
	//lint:ignore noiselint/goleak bounded by srv.Shutdown/Close below; errCh is buffered and drained on both exits
	go func() { errCh <- srv.Serve(ln) }()
	select {
	case err := <-errCh:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case <-ctx.Done():
	}
	s.Drain()
	log.Printf("draining in-flight requests (budget %v)", s.cfg.DrainTimeout)
	// The run context is already canceled; the drain needs its own
	// deadline that is not.
	dctx, cancel := context.WithTimeout(context.WithoutCancel(ctx), s.cfg.DrainTimeout)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		// Budget exhausted: force-close the stragglers so their request
		// contexts cancel and the process can exit.
		log.Printf("drain budget exhausted: %v; closing remaining connections", err)
		srv.Close()
		s.saveWarmLogged()
		return err
	}
	s.saveWarmLogged()
	return nil
}

// saveWarmLogged persists the session's warm state at shutdown; a save
// failure costs the next process its warm start, not this drain.
func (s *Server) saveWarmLogged() {
	if s.store == nil {
		return
	}
	if err := s.SaveWarm(); err != nil {
		log.Printf("warm store save failed: %v", err)
		return
	}
	log.Printf("warm store saved to %s", s.store.Dir())
}
