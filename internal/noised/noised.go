// Package noised is the resident serving layer over the analysis
// engine: a long-running HTTP daemon that owns one engine.Session and
// amortizes its warm state — alignment pre-characterization tables,
// bucketed driver characterizations, holding resistances, PRIMA ROMs —
// across every request, where the one-shot CLI tools rebuild it per
// invocation.
//
// The API is deliberately small:
//
//	POST /v1/analyze  accepts a workload case file (the exact JSON
//	                  schema internal/workload reads and cmd/netgen
//	                  writes) and streams per-net outcomes back as
//	                  NDJSON in completion order, one
//	                  clarinet.JournalRecord per line, terminated by a
//	                  summary line. Analysis options (hold, align,
//	                  rescue, net_timeout, timeout, request_id) ride in
//	                  the query string.
//	POST /v1/analyze-path  accepts a case file with a paths section
//	                  (netgen -topology path) and streams one
//	                  pathnoise.StageRecord per completed stage, ending
//	                  with a summary that carries the assembled path
//	                  reports (pathnoise.MarshalReport-canonical). Extra
//	                  knobs: path_iterations, path_timeout.
//	GET  /healthz     liveness + build identity + load snapshot.
//	GET  /readyz      200 while accepting, 503 once draining.
//	GET  /metrics     the engine metrics registry as JSON.
//
// Admission control keeps the daemon predictable under overload: at
// most MaxInflight requests analyze concurrently, at most MaxQueue wait
// behind them, and everything beyond that is shed immediately with
// 503 + Retry-After so clients back off instead of piling on. The
// request context threads straight into the clarinet pool, so a client
// disconnect or per-request deadline cancels in-flight nets at the next
// solver checkpoint. On SIGTERM the server drains: /readyz flips to
// 503, new analyses are refused, in-flight streams finish.
//
// With JournalDir set, a request that names itself via request_id is
// journaled server-side as it progresses; resubmitting the same
// request_id replays the completed nets from the journal and analyzes
// only the remainder — the serving twin of clarinet's -journal/-resume.
package noised

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"log"
	"net/http"
	"time"

	"repro/internal/clarinet"
	"repro/internal/delaynoise"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/noiseerr"
	"repro/internal/pathnoise"
	"repro/internal/resilience"
	"repro/internal/warmstore"
)

// Config assembles a Server. The zero value is usable: library defaults
// for the engine, transient hold, pre-characterized alignment (the
// cache-friendly method a resident service wants), and conservative
// admission limits.
type Config struct {
	// Hold is the default victim holding model (per-request "hold"
	// query overrides).
	Hold delaynoise.HoldModel
	// Align is the default alignment method (per-request "align" query
	// overrides). AlignDefault selects prechar: table-driven alignment
	// is the method whose cost amortizes across requests.
	Align delaynoise.AlignMethod
	// UseConfigAlign keeps Align even when it is the zero value
	// (AlignExhaustive); without it the zero Config picks prechar.
	UseConfigAlign bool
	// Resilience configures the convergence rescue ladder applied to
	// every request (see resilience.DefaultPolicy).
	Resilience resilience.Policy
	// NetTimeout bounds each net's analysis wall clock (0 = none).
	NetTimeout time.Duration
	// Workers bounds each request's analysis parallelism (0 = one per
	// core, as in clarinet).
	Workers int
	// PrecharGrid is the alignment-table search grid (0 = default 17).
	PrecharGrid int
	// CharCacheRes tunes the driver-characterization cache bucket
	// resolution (0 = default, negative disables).
	CharCacheRes float64
	// DisableROMCache turns off PRIMA model sharing.
	DisableROMCache bool

	// MaxInflight is the number of requests analyzed concurrently
	// (default 2).
	MaxInflight int
	// MaxQueue is the number of admitted requests allowed to wait for
	// an analysis slot (default 8). Beyond it the server sheds load
	// with 503 + Retry-After.
	MaxQueue int
	// MaxNets caps the case count of one request (default 5000);
	// larger requests are refused with 413.
	MaxNets int
	// MaxBodyBytes caps the request body (default 64 MiB).
	MaxBodyBytes int64
	// RetryAfter is the backoff hint attached to 503 responses
	// (default 1s; rounded up to whole seconds on the wire).
	RetryAfter time.Duration
	// MaxRequestTimeout caps the per-request "timeout" query parameter
	// and applies when the client sends none (default 15m, 0 keeps the
	// default; negative disables the cap).
	MaxRequestTimeout time.Duration
	// DrainTimeout bounds the graceful drain after shutdown begins
	// (default 60s).
	DrainTimeout time.Duration
	// Heartbeat is the keepalive interval of an idle analyze stream:
	// when no record has been written for this long the server emits a
	// heartbeat line (NDJSON) or frame (colblob) so clients can tell a
	// slow net from a dead server (default 10s; negative disables).
	Heartbeat time.Duration

	// JournalDir enables server-side journaling: each request carrying
	// a request_id appends its completed nets to
	// <JournalDir>/<request_id>.journal and a resubmitted request_id
	// resumes from that file (legacy <request_id>.jsonl journals are
	// merged underneath). Empty disables journaling.
	JournalDir string
	// JournalCodec selects the journal encoding for new journal files
	// (nil = the compact binary default; clarinet.JSONL for the debug
	// view). Existing journals keep their own sniffed format.
	JournalCodec clarinet.JournalCodec

	// WarmStoreDir enables the content-addressed warm-start store: at
	// startup the session seeds its caches from the entry matching its
	// identity (store.hits / store.misses in /metrics), and on drain it
	// saves the accumulated state back. Empty disables the store.
	WarmStoreDir string

	// Metrics receives server and engine instrumentation (nil installs
	// a fresh registry). Ignored when Session is set.
	Metrics *metrics.Registry
	// Session, when non-nil, backs the server with an existing engine
	// session (tests and embedders); the engine knobs above are then
	// ignored.
	Session *engine.Session
}

// Defaults, exported so cmd/noised flag help and the tests agree with
// the server.
const (
	DefaultMaxInflight       = 2
	DefaultMaxQueue          = 8
	DefaultMaxNets           = 5000
	DefaultMaxBodyBytes      = 64 << 20
	DefaultRetryAfter        = time.Second
	DefaultMaxRequestTimeout = 15 * time.Minute
	DefaultDrainTimeout      = 60 * time.Second
	DefaultHeartbeat         = 10 * time.Second
)

func (c *Config) defaults() {
	if !c.UseConfigAlign && c.Align == delaynoise.AlignExhaustive {
		c.Align = delaynoise.AlignPrechar
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = DefaultMaxInflight
	}
	if c.MaxQueue < 0 {
		c.MaxQueue = 0
	} else if c.MaxQueue == 0 {
		c.MaxQueue = DefaultMaxQueue
	}
	if c.MaxNets <= 0 {
		c.MaxNets = DefaultMaxNets
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = DefaultRetryAfter
	}
	if c.MaxRequestTimeout == 0 {
		c.MaxRequestTimeout = DefaultMaxRequestTimeout
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = DefaultDrainTimeout
	}
	if c.Heartbeat == 0 {
		c.Heartbeat = DefaultHeartbeat
	}
}

// runBatchFunc is the seam between the serving layer and the analysis
// pool; tests substitute controllable fakes for the real clarinet
// stream.
type runBatchFunc func(t *clarinet.Tool, ctx context.Context, names []string, cases []*delaynoise.Case, prior map[string]clarinet.NetReport, j *clarinet.Journal) <-chan clarinet.NetReport

// Server is the noised daemon: one warm engine session behind an
// admission-controlled streaming HTTP API. Build one with New; it is
// safe for concurrent use.
type Server struct {
	cfg      Config
	session  *engine.Session
	store    *warmstore.Store
	reg      *metrics.Registry
	adm      *admission
	mux      *http.ServeMux
	started  time.Time
	instance string

	runBatch runBatchFunc
	runPaths runPathsFunc
}

// New builds a server from cfg (see Config for zero-value defaults).
func New(cfg Config) (*Server, error) {
	cfg.defaults()
	if cfg.Workers < 0 {
		return nil, noiseerr.Invalidf("noised: negative worker count %d", cfg.Workers)
	}
	sess := cfg.Session
	if sess == nil {
		sess = engine.New(engine.Config{
			Metrics:         cfg.Metrics,
			PrecharGrid:     cfg.PrecharGrid,
			CharCacheRes:    cfg.CharCacheRes,
			DisableROMCache: cfg.DisableROMCache,
		})
	}
	var store *warmstore.Store
	if cfg.WarmStoreDir != "" {
		var err error
		store, err = warmstore.Open(cfg.WarmStoreDir, sess.Metrics())
		if err != nil {
			return nil, err
		}
		if ok, err := sess.LoadWarm(store); err != nil {
			return nil, err
		} else if ok {
			log.Printf("warm start: loaded session state from %s (%d alignment tables resident)",
				cfg.WarmStoreDir, sess.TableCount())
		} else {
			log.Printf("warm start: no state for this session identity in %s (cold start)", cfg.WarmStoreDir)
		}
	}
	s := &Server{
		cfg:      cfg,
		session:  sess,
		store:    store,
		reg:      sess.Metrics(),
		started:  time.Now(),
		instance: newInstanceID(),
		runBatch: func(t *clarinet.Tool, ctx context.Context, names []string, cases []*delaynoise.Case, prior map[string]clarinet.NetReport, j *clarinet.Journal) <-chan clarinet.NetReport {
			return t.StreamBatch(ctx, names, cases, prior, j)
		},
		runPaths: pathnoise.Run,
	}
	s.adm = newAdmission(cfg.MaxInflight, cfg.MaxQueue, s.reg)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/analyze", s.handleAnalyze)
	s.mux.HandleFunc("POST /v1/analyze-path", s.handleAnalyzePath)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s, nil
}

// SaveWarm persists the session's accumulated state to the warm store
// (no-op without one). Serve calls it after the drain completes; it is
// also safe to call at any quiescent point.
func (s *Server) SaveWarm() error {
	if s.store == nil {
		return nil
	}
	return s.session.SaveWarm(s.store)
}

// newInstanceID mints the random per-process identity exposed on
// /healthz and the X-Noised-Instance header. A gateway that sees the
// instance change behind an address knows the replica restarted (and
// lost any unjournaled state), not merely blipped.
func newInstanceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand is documented never to fail on supported
		// platforms; fall back to a stable marker rather than crash.
		return "instance-unavailable"
	}
	return hex.EncodeToString(b[:])
}

// Instance returns the server's random per-process identity.
func (s *Server) Instance() string { return s.instance }

// Session returns the server's warm engine session.
func (s *Server) Session() *engine.Session { return s.session }

// Metrics returns the server's instrumentation registry.
func (s *Server) Metrics() *metrics.Registry { return s.reg }

// Handler returns the server's HTTP handler, for mounting under
// httptest or a custom http.Server.
func (s *Server) Handler() http.Handler { return s.mux }

// Draining reports whether the server has begun its graceful drain.
func (s *Server) Draining() bool { return s.adm.draining() }

// Drain flips the server into drain mode: /readyz answers 503 and new
// analysis requests are refused while in-flight streams run to
// completion. Drain is idempotent.
func (s *Server) Drain() { s.adm.drain() }
