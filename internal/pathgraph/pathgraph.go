// Package pathgraph defines the stage-graph model of multi-stage
// fabrics: ordered chains of victim nets where stage k's receiver
// drives stage k+1's victim net. It is the leaf vocabulary shared by
// the workload layer (internal/workload path files) and the path
// analysis engine (internal/pathnoise), so workload definition never
// depends on the analysis stack — only on the graph shape and its
// chaining invariants.
package pathgraph

import (
	"fmt"
	"hash/fnv"

	"repro/internal/delaynoise"
	"repro/internal/noiseerr"
)

// Stage is one link of a path: a named victim net whose receiver drives
// the next stage's victim net.
type Stage struct {
	// Net names the stage's case (the workload case name; journal
	// records and reports key on it).
	Net string
	// Case is the stage's coupled cluster. For stages after the first,
	// Case.Victim.InputSlew and InputStart are the *nominal* values the
	// workload generator assigned; the analysis replaces the slew with
	// one derived from the upstream receiver-output waveform and keeps
	// InputStart as the stage-local time anchor (pathnoise chain.go).
	Case *delaynoise.Case
}

// Path is an ordered chain of stages.
type Path struct {
	Name   string
	Stages []Stage
}

// Validate checks the chaining invariants: every stage is a valid case,
// and stage k's receiver is electrically the next stage's victim driver
// — same cell, and a transition direction that follows through the
// chain (stage k+1's victim output direction is what its cell produces
// from stage k's receiver output edge).
func (p *Path) Validate() error {
	if p.Name == "" {
		return noiseerr.Invalidf("pathgraph: path has no name")
	}
	if len(p.Stages) == 0 {
		return noiseerr.Invalidf("pathgraph: path %s has no stages", p.Name)
	}
	for k, st := range p.Stages {
		if st.Case == nil {
			return noiseerr.Invalidf("pathgraph: path %s stage %d (%s) has no case", p.Name, k, st.Net)
		}
		if err := st.Case.Validate(); err != nil {
			return fmt.Errorf("pathgraph: path %s stage %d (%s): %w", p.Name, k, st.Net, err)
		}
		if k == 0 {
			continue
		}
		prev := p.Stages[k-1]
		if prev.Case.Receiver != st.Case.Victim.Cell && prev.Case.Receiver.Name != st.Case.Victim.Cell.Name {
			return noiseerr.Invalidf("pathgraph: path %s stage %d: victim cell %s does not match stage %d receiver %s",
				p.Name, k, st.Case.Victim.Cell.Name, k-1, prev.Case.Receiver.Name)
		}
		// The edge handed across the boundary is the previous receiver's
		// output; the stage's declared victim output direction must be
		// what its cell produces from that edge.
		handRising := prev.Case.Receiver.OutputRisingFor(prev.Case.Victim.OutputRising)
		want := st.Case.Victim.Cell.OutputRisingFor(handRising)
		if st.Case.Victim.OutputRising != want {
			return noiseerr.Invalidf("pathgraph: path %s stage %d: victim output direction %v breaks the chain (stage %d hands a %s edge through %s)",
				p.Name, k, st.Case.Victim.OutputRising, k-1, RiseFall(handRising), st.Case.Victim.Cell.Name)
		}
	}
	return nil
}

// RiseFall names a transition direction for diagnostics.
func RiseFall(rising bool) string {
	if rising {
		return "rising"
	}
	return "falling"
}

// ValidatePaths validates a path set and rejects duplicate path names
// (journals, schedulers, and the gateway all key on them).
func ValidatePaths(paths []*Path) error {
	seen := make(map[string]bool, len(paths))
	for _, p := range paths {
		if err := p.Validate(); err != nil {
			return err
		}
		if seen[p.Name] {
			return noiseerr.Invalidf("pathgraph: duplicate path name %q", p.Name)
		}
		seen[p.Name] = true
	}
	return nil
}

// StageRising returns the receiver-output transition direction of stage
// k — the direction of the waveform handed to stage k+1. It is a pure
// function of the path structure, so resumed runs can rebuild handoff
// directions without re-simulating.
func (p *Path) StageRising(k int) bool {
	st := p.Stages[k]
	return st.Case.Receiver.OutputRisingFor(st.Case.Victim.OutputRising)
}

// TopologyHash fingerprints the stage-graph topology of a path set:
// path names, stage order, the net names chained, and each boundary's
// cell handoff. It is the Topology component of the engine warm-store
// identity (engine.Identity), keeping path-mode warm state addressed
// apart from per-net state — and apart from other path topologies —
// so a shared warm store can never serve alignment tables across
// topologies whose derived stage inputs differ. The hash is
// insensitive to path-set order (paths are folded commutatively), so
// the same fabric sharded differently keeps one identity.
func TopologyHash(paths []*Path) uint64 {
	var sum uint64
	for _, p := range paths {
		h := fnv.New64a()
		fmt.Fprintf(h, "path|%s|%d|", p.Name, len(p.Stages))
		for k, st := range p.Stages {
			fmt.Fprintf(h, "%d|%s|%s|%t|%s|", k, st.Net,
				st.Case.Victim.Cell.Name, st.Case.Victim.OutputRising, st.Case.Receiver.Name)
		}
		sum += h.Sum64() // commutative fold: path-set order is irrelevant
	}
	if sum == 0 {
		return 1 // never collide with the per-net identity (Topology 0)
	}
	return sum
}
