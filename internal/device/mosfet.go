// Package device provides the nonlinear transistor and gate models used
// as the "SPICE-level" golden reference of the reproduction. The MOSFET
// follows the Sakurai-Newton alpha-power law, smoothed so that current
// and small-signal conductances are continuous everywhere — which is
// exactly the property (strongly varying conductance during a transition)
// that makes the paper's transient holding resistance necessary.
package device

import (
	"fmt"
	"math"

	"repro/internal/noiseerr"
)

// MOSType distinguishes the two device polarities.
type MOSType int

const (
	NMOS MOSType = iota
	PMOS
)

// String names the device polarity.
func (t MOSType) String() string {
	if t == NMOS {
		return "nmos"
	}
	return "pmos"
}

// MOSParams are the alpha-power-law parameters of one device polarity.
// Widths are in meters; K is in A / (V^Alpha * m) so that drain current
// scales linearly with width.
type MOSParams struct {
	Type  MOSType
	Vth   float64 // threshold voltage, V (positive for both polarities)
	Alpha float64 // velocity-saturation index (2 = long channel, ~1.3 here)
	K     float64 // drive factor, A / (V^Alpha * m width)
	Kv    float64 // Vdsat factor: Vdsat = Kv * (Vgst)^(Alpha/2)
	Vs    float64 // subthreshold smoothing width, V
	Gmin  float64 // minimum drain-source conductance per width, S/m
	// Sat is the saturation-knee steepness: the current follows
	// tanh(Sat * vds/Vdsat). Larger values flatten the saturation region
	// (lower output conductance past the knee), matching the near-zero
	// channel-length-modulation gds of a real short-channel device. A
	// value of 1 gives the soft knee of a plain tanh.
	Sat float64
	// CgPerW and CdPerW are gate and drain diffusion capacitance per
	// width, F/m.
	CgPerW float64
	CdPerW float64
}

// Validate checks the parameter set for physical plausibility.
func (p *MOSParams) Validate() error {
	switch {
	case p.Vth <= 0:
		return noiseerr.Invalidf("device: Vth must be positive, got %g", p.Vth)
	case p.Alpha < 1 || p.Alpha > 2:
		return noiseerr.Invalidf("device: Alpha %g outside [1, 2]", p.Alpha)
	case p.K <= 0:
		return noiseerr.Invalidf("device: K must be positive, got %g", p.K)
	case p.Kv <= 0:
		return noiseerr.Invalidf("device: Kv must be positive, got %g", p.Kv)
	case p.Vs <= 0:
		return noiseerr.Invalidf("device: Vs must be positive, got %g", p.Vs)
	case p.Sat <= 0:
		return noiseerr.Invalidf("device: Sat must be positive, got %g", p.Sat)
	}
	return nil
}

// softplus is a smooth max(0, x) with width s; its derivative is the
// logistic function.
func softplus(x, s float64) (f, df float64) {
	z := x / s
	switch {
	case z > 40:
		return x, 1
	case z < -40:
		return 0, 0
	}
	e := math.Exp(z)
	return s * math.Log1p(e), e / (1 + e)
}

// Ids returns the drain-source current of a device of width w (meters)
// given terminal voltages vgs and vds (both taken positive in the
// device's conducting sense: for PMOS callers pass vsg and vsd), together
// with the partial derivatives dId/dVgs and dId/dVds.
//
// The model is a smoothed alpha-power law:
//
//	Vgst  = softplus(vgs - Vth)
//	Vdsat = Kv * Vgst^(Alpha/2)
//	Id    = K*w * Vgst^Alpha * tanh(Sat * vds / Vdsat)  + Gmin*w*vds
//
// tanh provides the linear-to-saturation transition with continuous
// derivatives: for vds << Vdsat the device is resistive with conductance
// K*w*Vgst^Alpha*Sat/Vdsat, and for vds >> Vdsat the current saturates at
// K*w*Vgst^Alpha with near-zero output conductance. Negative vds is
// handled symmetrically (current reverses sign), which keeps the model
// continuous through zero crossing.
func (p *MOSParams) Ids(w, vgs, vds float64) (id, gm, gds float64) {
	if w <= 0 {
		panic(fmt.Sprintf("device: non-positive width %g", w))
	}
	sign := 1.0
	if vds < 0 {
		// Treat the channel symmetrically for reverse conduction (small
		// undershoots during transients); current simply reverses sign.
		vds = -vds
		sign = -1
	}
	gminI := p.Gmin * w * vds
	vgst, dvgst := softplus(vgs-p.Vth, p.Vs)
	if vgst <= 0 {
		return sign * gminI, 0, p.Gmin * w
	}
	vga := math.Pow(vgst, p.Alpha)
	vdsat := p.Kv * math.Pow(vgst, 0.5*p.Alpha)
	u := vds / vdsat
	th := math.Tanh(p.Sat * u)
	sech2 := 1 - th*th

	idCore := p.K * w * vga * th
	id = sign * (idCore + gminI)

	// dId/dVds: core current via tanh(Sat*u), plus gmin.
	gds = p.K*w*vga*p.Sat*sech2/vdsat + p.Gmin*w

	// dId/dVgs: both Vgst^Alpha and Vdsat depend on vgs.
	// d(vga)/dvgs = Alpha * vgst^(Alpha-1) * dvgst
	// d(u)/dvgs   = -vds/vdsat^2 * dVdsat/dvgs,
	// dVdsat/dvgs = Kv * Alpha/2 * vgst^(Alpha/2-1) * dvgst
	dvga := p.Alpha * math.Pow(vgst, p.Alpha-1) * dvgst
	dvdsat := p.Kv * 0.5 * p.Alpha * math.Pow(vgst, 0.5*p.Alpha-1) * dvgst
	du := -vds / (vdsat * vdsat) * dvdsat
	gm = p.K * w * (dvga*th + vga*p.Sat*sech2*du)
	gm *= sign
	return id, gm, gds
}

// Technology bundles the device parameters of a process corner plus the
// supply voltage. The default models a generic 0.18 um-era process at
// Vdd = 1.8 V.
type Technology struct {
	Name string
	Vdd  float64
	N, P MOSParams
}

// Default180 returns the default 0.18 um-class technology used throughout
// the reproduction.
func Default180() *Technology {
	return &Technology{
		Name: "generic-180nm",
		Vdd:  1.8,
		N: MOSParams{
			Type: NMOS, Vth: 0.42, Alpha: 1.3,
			K:  370e-6 / 1e-6, // 370 uA per um at Vgst = 1 V
			Kv: 0.55, Vs: 0.04, Gmin: 1e-9 / 1e-6, Sat: 2.2,
			CgPerW: 1.2e-15 / 1e-6, CdPerW: 0.8e-15 / 1e-6,
		},
		P: MOSParams{
			Type: PMOS, Vth: 0.45, Alpha: 1.4,
			K:  165e-6 / 1e-6,
			Kv: 0.75, Vs: 0.04, Gmin: 1e-9 / 1e-6, Sat: 2.2,
			CgPerW: 1.2e-15 / 1e-6, CdPerW: 0.8e-15 / 1e-6,
		},
	}
}

// Corner derives a process corner from the technology: drive factors are
// scaled by kScale and thresholds shifted by vthShift (volts, applied to
// both polarities). The noise-analysis conclusions should be checked at
// corners because the transient/aggregate conductance contrast that
// drives the Rtr correction shifts with process.
func (t *Technology) Corner(name string, kScale, vthShift float64) *Technology {
	out := *t
	out.Name = name
	out.N.K *= kScale
	out.P.K *= kScale
	out.N.Vth += vthShift
	out.P.Vth += vthShift
	return &out
}

// Fast180 returns the fast (FF-like) corner of the default technology.
func Fast180() *Technology { return Default180().Corner("generic-180nm-ff", 1.25, -0.05) }

// Slow180 returns the slow (SS-like) corner of the default technology.
func Slow180() *Technology { return Default180().Corner("generic-180nm-ss", 0.8, +0.05) }

// Validate checks both polarities and the supply.
func (t *Technology) Validate() error {
	if t.Vdd <= 0 {
		return noiseerr.Invalidf("device: Vdd must be positive, got %g", t.Vdd)
	}
	if err := t.N.Validate(); err != nil {
		return fmt.Errorf("nmos: %w", err)
	}
	if err := t.P.Validate(); err != nil {
		return fmt.Errorf("pmos: %w", err)
	}
	return nil
}
