package device

import (
	"sort"

	"repro/internal/noiseerr"
)

// Local node names used inside a cell topology. "in" and "out" are the
// cell's external pins; "vdd" and "0" are the rails; any other name is an
// internal node (e.g. the middle of a series stack).
const (
	PinIn  = "in"
	PinOut = "out"
	PinVdd = "vdd"
	PinGnd = "0"
)

// FET is one transistor of a cell topology. Terminal names are local to
// the cell and resolved at instantiation time.
type FET struct {
	Name    string
	Params  *MOSParams
	W       float64 // width, m
	D, G, S string  // drain, gate, source local node names
}

// Cell is a static CMOS gate described at transistor level, with one
// switching input pin ("in") and one output pin ("out"). Multi-input
// gates model the single-input-switching case used throughout the paper:
// side inputs are tied to the rail that makes the gate transparent, which
// is also the standard characterization condition.
type Cell struct {
	Name string
	Tech *Technology
	FETs []FET
	// NonInverting marks cells whose output follows the input direction
	// (buffers); the default (false) is an inverting stage.
	NonInverting bool
}

// IsInverting reports whether the cell inverts its switching input.
func (c *Cell) IsInverting() bool { return !c.NonInverting }

// OutputRisingFor returns the output transition direction for a given
// input direction.
func (c *Cell) OutputRisingFor(inRising bool) bool {
	if c.NonInverting {
		return inRising
	}
	return !inRising
}

// InputRisingFor returns the input direction that produces the requested
// output direction.
func (c *Cell) InputRisingFor(outRising bool) bool {
	if c.NonInverting {
		return outRising
	}
	return !outRising
}

// InputCap returns the total gate capacitance presented at the "in" pin.
func (c *Cell) InputCap() float64 {
	s := 0.0
	for _, f := range c.FETs {
		if f.G == PinIn {
			s += f.Params.CgPerW * f.W
		}
	}
	return s
}

// OutputCap returns the total drain diffusion capacitance at the "out" pin.
func (c *Cell) OutputCap() float64 {
	s := 0.0
	for _, f := range c.FETs {
		if f.D == PinOut || f.S == PinOut {
			s += f.Params.CdPerW * f.W
		}
	}
	return s
}

// InternalNodes returns the sorted local node names that are neither pins
// nor rails.
func (c *Cell) InternalNodes() []string {
	set := map[string]bool{}
	for _, f := range c.FETs {
		for _, n := range []string{f.D, f.G, f.S} {
			switch n {
			case PinIn, PinOut, PinVdd, PinGnd:
			default:
				set[n] = true
			}
		}
	}
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Inverter builds a CMOS inverter with the given NMOS and PMOS widths.
func Inverter(tech *Technology, name string, wn, wp float64) *Cell {
	return &Cell{
		Name: name,
		Tech: tech,
		FETs: []FET{
			{Name: "mn", Params: &tech.N, W: wn, D: PinOut, G: PinIn, S: PinGnd},
			{Name: "mp", Params: &tech.P, W: wp, D: PinOut, G: PinIn, S: PinVdd},
		},
	}
}

// NAND2 builds a two-input NAND with input A switching and input B tied
// to Vdd (the worst-case single-input condition: the full series NMOS
// stack conducts through the switching device).
func NAND2(tech *Technology, name string, wn, wp float64) *Cell {
	return &Cell{
		Name: name,
		Tech: tech,
		FETs: []FET{
			// Series NMOS stack: out - mid - gnd. Switching input drives
			// the bottom device (worst slew on the output).
			{Name: "mna", Params: &tech.N, W: wn, D: "mid", G: PinIn, S: PinGnd},
			{Name: "mnb", Params: &tech.N, W: wn, D: PinOut, G: PinVdd, S: "mid"},
			// Parallel PMOS; the side device's gate is at Vdd so it is off.
			{Name: "mpa", Params: &tech.P, W: wp, D: PinOut, G: PinIn, S: PinVdd},
			{Name: "mpb", Params: &tech.P, W: wp, D: PinOut, G: PinVdd, S: PinVdd},
		},
	}
}

// NOR2 builds a two-input NOR with input A switching and input B tied to
// ground.
func NOR2(tech *Technology, name string, wn, wp float64) *Cell {
	return &Cell{
		Name: name,
		Tech: tech,
		FETs: []FET{
			// Parallel NMOS; side device off (gate at ground).
			{Name: "mna", Params: &tech.N, W: wn, D: PinOut, G: PinIn, S: PinGnd},
			{Name: "mnb", Params: &tech.N, W: wn, D: PinOut, G: PinGnd, S: PinGnd},
			// Series PMOS stack: vdd - mid - out.
			{Name: "mpb", Params: &tech.P, W: wp, D: "mid", G: PinGnd, S: PinVdd},
			{Name: "mpa", Params: &tech.P, W: wp, D: PinOut, G: PinIn, S: "mid"},
		},
	}
}

// Buffer builds a two-stage non-inverting buffer: a small input inverter
// driving a larger output inverter through an internal node.
func Buffer(tech *Technology, name string, wn1, wp1, wn2, wp2 float64) *Cell {
	return &Cell{
		Name:         name,
		Tech:         tech,
		NonInverting: true,
		FETs: []FET{
			{Name: "mn1", Params: &tech.N, W: wn1, D: "x", G: PinIn, S: PinGnd},
			{Name: "mp1", Params: &tech.P, W: wp1, D: "x", G: PinIn, S: PinVdd},
			{Name: "mn2", Params: &tech.N, W: wn2, D: PinOut, G: "x", S: PinGnd},
			{Name: "mp2", Params: &tech.P, W: wp2, D: PinOut, G: "x", S: PinVdd},
		},
	}
}

// AOI21 builds an AND-OR-INVERT gate with the switching input on the
// OR-side device (inputs A1, A2 of the AND branch tied so that branch is
// off: A1 at ground). The switching input drives a single NMOS in
// parallel with the (off) AND stack and a series PMOS.
func AOI21(tech *Technology, name string, wn, wp float64) *Cell {
	return &Cell{
		Name: name,
		Tech: tech,
		FETs: []FET{
			// NMOS: B in parallel with the A1-A2 series stack (A1 off).
			{Name: "mnb", Params: &tech.N, W: wn, D: PinOut, G: PinIn, S: PinGnd},
			{Name: "mna1", Params: &tech.N, W: wn, D: "ma", G: PinGnd, S: PinGnd},
			{Name: "mna2", Params: &tech.N, W: wn, D: PinOut, G: PinVdd, S: "ma"},
			// PMOS: B in series below the A1/A2 parallel pair (A1 on).
			{Name: "mpa1", Params: &tech.P, W: wp, D: "mp", G: PinGnd, S: PinVdd},
			{Name: "mpa2", Params: &tech.P, W: wp, D: "mp", G: PinVdd, S: PinVdd},
			{Name: "mpb", Params: &tech.P, W: wp, D: PinOut, G: PinIn, S: "mp"},
		},
	}
}

// OAI21 builds an OR-AND-INVERT gate with the switching input on the
// AND-side series NMOS (OR-side input held so the gate is transparent).
func OAI21(tech *Technology, name string, wn, wp float64) *Cell {
	return &Cell{
		Name: name,
		Tech: tech,
		FETs: []FET{
			// NMOS: B in series below the A1/A2 parallel pair (A1 on).
			{Name: "mna1", Params: &tech.N, W: wn, D: "mn", G: PinVdd, S: PinGnd},
			{Name: "mna2", Params: &tech.N, W: wn, D: "mn", G: PinGnd, S: PinGnd},
			{Name: "mnb", Params: &tech.N, W: wn, D: PinOut, G: PinIn, S: "mn"},
			// PMOS: B in parallel with the A1-A2 series stack. With A1 = 1
			// and A2 = 0, the A1 device is off and the A2 device on, so
			// the stack is blocked at A1 while its middle node stays tied
			// to the output through A2.
			{Name: "mpb", Params: &tech.P, W: wp, D: PinOut, G: PinIn, S: PinVdd},
			{Name: "mpa1", Params: &tech.P, W: wp, D: "mq", G: PinVdd, S: PinVdd},
			{Name: "mpa2", Params: &tech.P, W: wp, D: PinOut, G: PinGnd, S: "mq"},
		},
	}
}

// Library is a named collection of cells, keyed by cell name.
type Library struct {
	Tech  *Technology
	Cells map[string]*Cell
	names []string
}

// NewLibrary builds the default standard-cell library used by the
// experiments: inverters at five drive strengths and P/N ratios, NAND2
// and NOR2 at two strengths each, spanning the gate type / size / P-N
// ratio axes the paper's alignment study covers.
func NewLibrary(tech *Technology) *Library {
	um := 1e-6
	lib := &Library{Tech: tech, Cells: map[string]*Cell{}}
	add := func(c *Cell) { lib.Cells[c.Name] = c; lib.names = append(lib.names, c.Name) }
	add(Inverter(tech, "INVX1", 0.6*um, 1.2*um))
	add(Inverter(tech, "INVX2", 1.2*um, 2.4*um))
	add(Inverter(tech, "INVX4", 2.4*um, 4.8*um))
	add(Inverter(tech, "INVX8", 4.8*um, 9.6*um))
	add(Inverter(tech, "INVX16", 9.6*um, 19.2*um))
	// Skewed P/N ratio variants.
	add(Inverter(tech, "INVX2P", 1.2*um, 3.6*um))
	add(Inverter(tech, "INVX2N", 1.8*um, 1.8*um))
	add(NAND2(tech, "NAND2X1", 1.2*um, 1.2*um))
	add(NAND2(tech, "NAND2X2", 2.4*um, 2.4*um))
	add(NOR2(tech, "NOR2X1", 0.6*um, 2.4*um))
	add(NOR2(tech, "NOR2X2", 1.2*um, 4.8*um))
	add(Buffer(tech, "BUFX4", 0.6*um, 1.2*um, 2.4*um, 4.8*um))
	add(AOI21(tech, "AOI21X1", 1.2*um, 2.4*um))
	add(OAI21(tech, "OAI21X1", 1.2*um, 2.4*um))
	sort.Strings(lib.names)
	return lib
}

// Cell returns the named cell or an error listing the available names.
func (l *Library) Cell(name string) (*Cell, error) {
	c, ok := l.Cells[name]
	if !ok {
		return nil, noiseerr.Invalidf("device: no cell %q in library (have %v)", name, l.names)
	}
	return c, nil
}

// Names returns the sorted cell names.
func (l *Library) Names() []string { return append([]string(nil), l.names...) }
