package device

import (
	"testing"
)

func TestLibraryContents(t *testing.T) {
	lib := NewLibrary(Default180())
	for _, name := range []string{"INVX1", "INVX4", "NAND2X1", "NOR2X1", "INVX2P"} {
		if _, err := lib.Cell(name); err != nil {
			t.Errorf("missing cell %s: %v", name, err)
		}
	}
	if _, err := lib.Cell("XYZ"); err == nil {
		t.Error("expected error for unknown cell")
	}
	names := lib.Names()
	if len(names) != len(lib.Cells) {
		t.Fatalf("Names() returned %d, have %d cells", len(names), len(lib.Cells))
	}
	for i := 1; i < len(names); i++ {
		if names[i] <= names[i-1] {
			t.Fatal("Names() not sorted")
		}
	}
}

func TestInverterTopology(t *testing.T) {
	tech := Default180()
	inv := Inverter(tech, "inv", 1e-6, 2e-6)
	if len(inv.FETs) != 2 {
		t.Fatalf("inverter has %d FETs", len(inv.FETs))
	}
	if n := inv.InternalNodes(); len(n) != 0 {
		t.Fatalf("inverter should have no internal nodes, got %v", n)
	}
	// Input cap = (Wn + Wp) * CgPerW.
	want := tech.N.CgPerW*1e-6 + tech.P.CgPerW*2e-6
	if got := inv.InputCap(); got != want {
		t.Fatalf("InputCap = %g, want %g", got, want)
	}
	if inv.OutputCap() <= 0 {
		t.Fatal("OutputCap must be positive")
	}
}

func TestNAND2Topology(t *testing.T) {
	tech := Default180()
	nd := NAND2(tech, "nd", 1e-6, 1e-6)
	if len(nd.FETs) != 4 {
		t.Fatalf("NAND2 has %d FETs", len(nd.FETs))
	}
	internals := nd.InternalNodes()
	if len(internals) != 1 || internals[0] != "mid" {
		t.Fatalf("NAND2 internal nodes = %v", internals)
	}
	// Only the switching input's gate cap counts toward InputCap.
	want := tech.N.CgPerW*1e-6 + tech.P.CgPerW*1e-6
	if got := nd.InputCap(); got != want {
		t.Fatalf("InputCap = %g, want %g", got, want)
	}
}

func TestNOR2Topology(t *testing.T) {
	tech := Default180()
	nr := NOR2(tech, "nr", 1e-6, 4e-6)
	if len(nr.FETs) != 4 {
		t.Fatalf("NOR2 has %d FETs", len(nr.FETs))
	}
	if internals := nr.InternalNodes(); len(internals) != 1 {
		t.Fatalf("NOR2 internal nodes = %v", internals)
	}
}

func TestLibraryDriveStrengthOrdering(t *testing.T) {
	lib := NewLibrary(Default180())
	x1, _ := lib.Cell("INVX1")
	x4, _ := lib.Cell("INVX4")
	if x4.InputCap() <= x1.InputCap() {
		t.Fatal("INVX4 should present more input cap than INVX1")
	}
	if x4.FETs[0].W <= x1.FETs[0].W {
		t.Fatal("INVX4 devices should be wider")
	}
}

func TestBufferPolarity(t *testing.T) {
	tech := Default180()
	buf := Buffer(tech, "buf", 1e-6, 2e-6, 4e-6, 8e-6)
	if buf.IsInverting() {
		t.Fatal("buffer must be non-inverting")
	}
	if !buf.OutputRisingFor(true) || buf.OutputRisingFor(false) {
		t.Fatal("buffer output must follow input")
	}
	if !buf.InputRisingFor(true) {
		t.Fatal("buffer input direction must follow output")
	}
	if n := buf.InternalNodes(); len(n) != 1 || n[0] != "x" {
		t.Fatalf("buffer internal nodes = %v", n)
	}
}

func TestInverterPolarityHelpers(t *testing.T) {
	tech := Default180()
	inv := Inverter(tech, "inv", 1e-6, 2e-6)
	if !inv.IsInverting() {
		t.Fatal("inverter must invert")
	}
	if inv.OutputRisingFor(true) || !inv.OutputRisingFor(false) {
		t.Fatal("inverter output must oppose input")
	}
	if inv.InputRisingFor(true) {
		t.Fatal("rising inverter output needs falling input")
	}
}

func TestComplexGatesInLibrary(t *testing.T) {
	lib := NewLibrary(Default180())
	for _, name := range []string{"BUFX4", "AOI21X1", "OAI21X1"} {
		c, err := lib.Cell(name)
		if err != nil {
			t.Fatalf("%s missing: %v", name, err)
		}
		if c.InputCap() <= 0 {
			t.Fatalf("%s has no input cap", name)
		}
	}
	aoi, _ := lib.Cell("AOI21X1")
	if !aoi.IsInverting() {
		t.Fatal("AOI21 must invert")
	}
}
