package device

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDefaultTechValidates(t *testing.T) {
	if err := Default180().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesBadParams(t *testing.T) {
	base := Default180().N
	cases := map[string]func(*MOSParams){
		"Vth":   func(p *MOSParams) { p.Vth = 0 },
		"Alpha": func(p *MOSParams) { p.Alpha = 3 },
		"K":     func(p *MOSParams) { p.K = -1 },
		"Kv":    func(p *MOSParams) { p.Kv = 0 },
		"Vs":    func(p *MOSParams) { p.Vs = 0 },
		"Sat":   func(p *MOSParams) { p.Sat = 0 },
	}
	for name, mut := range cases {
		p := base
		mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: expected validation error", name)
		}
	}
	bad := Default180()
	bad.Vdd = 0
	if err := bad.Validate(); err == nil {
		t.Error("expected Vdd validation error")
	}
}

func TestIdsCutoff(t *testing.T) {
	p := Default180().N
	id, _, gds := p.Ids(1e-6, 0.0, 1.0) // well below Vth
	// Only the gmin leakage path conducts.
	if math.Abs(id) > 2*p.Gmin*1e-6*1.0+1e-12 {
		t.Fatalf("cutoff current %g too large", id)
	}
	if gds <= 0 {
		t.Fatal("gds must stay positive (gmin)")
	}
}

func TestIdsSaturationValue(t *testing.T) {
	p := Default180().N
	w := 1e-6
	// Deep saturation: vds far above Vdsat.
	id, _, _ := p.Ids(w, 1.8, 1.8)
	vgst := 1.8 - p.Vth
	want := p.K * w * math.Pow(vgst, p.Alpha)
	if math.Abs(id-want) > 0.02*want {
		t.Fatalf("saturation current %g, want ~%g", id, want)
	}
}

func TestIdsLinearRegionConductance(t *testing.T) {
	p := Default180().N
	w := 1e-6
	// Tiny vds: conductance should approach K*w*Vgst^Alpha*Sat / Vdsat.
	vgs := 1.8
	vgst := vgs - p.Vth
	vdsat := p.Kv * math.Pow(vgst, 0.5*p.Alpha)
	gLin := p.K * w * math.Pow(vgst, p.Alpha) * p.Sat / vdsat
	id, _, gds := p.Ids(w, vgs, 1e-4)
	if math.Abs(id/1e-4-gLin) > 0.05*gLin {
		t.Fatalf("linear-region conductance %g, want ~%g", id/1e-4, gLin)
	}
	if math.Abs(gds-gLin) > 0.1*gLin {
		t.Fatalf("gds %g, want ~%g", gds, gLin)
	}
}

func TestIdsMonotonicInVgsAndVds(t *testing.T) {
	p := Default180().N
	w := 2e-6
	prev := -1.0
	for vgs := 0.0; vgs <= 1.8; vgs += 0.05 {
		id, _, _ := p.Ids(w, vgs, 0.9)
		if id < prev {
			t.Fatalf("Ids not monotone in vgs at %g", vgs)
		}
		prev = id
	}
	prev = -1.0
	for vds := 0.0; vds <= 1.8; vds += 0.05 {
		id, _, _ := p.Ids(w, 1.2, vds)
		if id < prev {
			t.Fatalf("Ids not monotone in vds at %g", vds)
		}
		prev = id
	}
}

func TestIdsReverseSymmetry(t *testing.T) {
	p := Default180().N
	idF, _, gdsF := p.Ids(1e-6, 1.0, 0.5)
	idR, _, gdsR := p.Ids(1e-6, 1.0, -0.5)
	if math.Abs(idF+idR) > 1e-15 {
		t.Fatalf("reverse current not mirrored: %g vs %g", idF, idR)
	}
	if math.Abs(gdsF-gdsR) > 1e-15 {
		t.Fatal("gds must be even in vds")
	}
}

// TestIdsDerivativesMatchFiniteDifference is the property test anchoring
// the Newton solver: analytic gm/gds must match numeric differentiation.
func TestIdsDerivativesMatchFiniteDifference(t *testing.T) {
	for _, p := range []MOSParams{Default180().N, Default180().P} {
		p := p
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			w := 1e-6 * (0.5 + 4*rng.Float64())
			vgs := -0.2 + 2.2*rng.Float64()
			vds := 0.01 + 1.8*rng.Float64()
			const h = 1e-6
			_, gm, gds := p.Ids(w, vgs, vds)
			idP, _, _ := p.Ids(w, vgs+h, vds)
			idM, _, _ := p.Ids(w, vgs-h, vds)
			gmNum := (idP - idM) / (2 * h)
			idP, _, _ = p.Ids(w, vgs, vds+h)
			idM, _, _ = p.Ids(w, vgs, vds-h)
			gdsNum := (idP - idM) / (2 * h)
			scale := p.K * w
			return math.Abs(gm-gmNum) < 1e-4*scale+1e-3*math.Abs(gmNum) &&
				math.Abs(gds-gdsNum) < 1e-4*scale+1e-3*math.Abs(gdsNum)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%s: %v", p.Type, err)
		}
	}
}

func TestIdsPanicsOnBadWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero width")
		}
	}()
	p := Default180().N
	p.Ids(0, 1, 1)
}

func TestConductanceVariesOverTransition(t *testing.T) {
	// The premise of the paper: the small-signal output conductance of a
	// driver varies dramatically as its input sweeps through a transition.
	p := Default180().N
	w := 2e-6
	gAtLow, gAtHigh := 0.0, 0.0
	_, _, gAtLow = p.Ids(w, 0.3, 0.05) // input below Vth: device off
	_, _, gAtHigh = p.Ids(w, 1.8, 0.05)
	if gAtHigh < 100*gAtLow {
		t.Fatalf("conductance swing too small: %g vs %g", gAtLow, gAtHigh)
	}
}

func TestCorners(t *testing.T) {
	typ, ff, ss := Default180(), Fast180(), Slow180()
	for _, tech := range []*Technology{ff, ss} {
		if err := tech.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	// FF drives more current than TT than SS at identical bias.
	idAt := func(tech *Technology) float64 {
		id, _, _ := tech.N.Ids(1e-6, 1.8, 1.8)
		return id
	}
	if !(idAt(ff) > idAt(typ) && idAt(typ) > idAt(ss)) {
		t.Fatalf("corner ordering broken: %v / %v / %v", idAt(ff), idAt(typ), idAt(ss))
	}
	// Corner derivation must not mutate the base.
	if typ.N.K != Default180().N.K {
		t.Fatal("Corner mutated the base technology")
	}
}
