package delaynoise

import (
	"context"
	"math"
	"testing"

	"repro/internal/device"
	"repro/internal/lsim"
	"repro/internal/metrics"
	"repro/internal/mna"
	"repro/internal/netlist"
	"repro/internal/waveform"
)

// TestCharCacheHitIsExact re-analyzes an identical case through a shared
// CharCache and checks both the hit accounting and that the cached run
// reproduces the uncached result bit-for-bit (exact keys).
func TestCharCacheHitIsExact(t *testing.T) {
	c := testCase(t)
	base, err := Analyze(c, Options{Align: AlignReceiverInput, Hold: HoldTransient})
	if err != nil {
		t.Fatal(err)
	}

	reg := metrics.NewRegistry()
	opt := Options{
		Align:   AlignReceiverInput,
		Hold:    HoldTransient,
		Chars:   NewCharCache(0, reg),
		Metrics: reg,
	}
	first, err := Analyze(c, opt)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Analyze(c, opt)
	if err != nil {
		t.Fatal(err)
	}
	s := reg.Snapshot()
	if hits, _, _ := s.CacheRatio("cache.char.full"); hits == 0 {
		t.Fatalf("expected full-characterization cache hits, counters: %v", s.Counters)
	}
	if hits, _, _ := s.CacheRatio("cache.char.rough"); hits == 0 {
		t.Fatalf("expected rough-fit cache hits, counters: %v", s.Counters)
	}
	if hits, _, _ := s.CacheRatio("cache.holdres"); hits == 0 {
		t.Fatalf("expected holding-resistance cache hits, counters: %v", s.Counters)
	}
	if first.DelayNoise != second.DelayNoise || first.VictimRtr != second.VictimRtr {
		t.Fatalf("cached re-run diverged: %v vs %v", first.DelayNoise, second.DelayNoise)
	}
	// The bucketed rough fits may perturb the result slightly relative to
	// the uncached flow, but only within the bucket resolution. DelayNoise
	// itself can be numerically tiny, so compare the physically meaningful
	// intermediates.
	if relErr := math.Abs(first.VictimRtr-base.VictimRtr) / base.VictimRtr; relErr > 0.02 {
		t.Fatalf("bucketed Rtr drifted %.1f%% from uncached", 100*relErr)
	}
	if relErr := math.Abs(first.Pulse.Height-base.Pulse.Height) / math.Abs(base.Pulse.Height); relErr > 0.02 {
		t.Fatalf("bucketed pulse height drifted %.1f%% from uncached", 100*relErr)
	}
	if s.Counters["sim.linear"] == 0 {
		t.Fatal("linear simulation counter not incremented")
	}
	if s.Counters["sim.nonlinear.receiver"] == 0 {
		t.Fatal("nonlinear receiver simulation counter not incremented")
	}
}

// TestCharCacheBucketSharing verifies that slews within one geometric
// bucket share a single rough fit deterministically.
func TestCharCacheBucketSharing(t *testing.T) {
	lib := device.NewLibrary(device.Default180())
	cell, err := lib.Cell("INVX4")
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	cc := NewCharCache(0.05, reg)
	a, err := cc.RoughFit(context.Background(), cell, 100e-12, true, 20e-15)
	if err != nil {
		t.Fatal(err)
	}
	// 1% away: same 5% bucket.
	b, err := cc.RoughFit(context.Background(), cell, 101e-12, true, 20e-15)
	if err != nil {
		t.Fatal(err)
	}
	if a.Rth != b.Rth {
		t.Fatalf("bucketed fits differ: %v vs %v", a.Rth, b.Rth)
	}
	s := reg.Snapshot()
	if hits, misses, _ := s.CacheRatio("cache.char.rough"); hits != 1 || misses != 1 {
		t.Fatalf("hit/miss = %d/%d, want 1/1", hits, misses)
	}
	// 40% away: different bucket, recomputed.
	c, err := cc.RoughFit(context.Background(), cell, 140e-12, true, 20e-15)
	if err != nil {
		t.Fatal(err)
	}
	if c.Rth == a.Rth {
		t.Fatal("distant slews must not share a bucket")
	}
}

// TestROMCacheRebindsInputs checks that a ROM cache hit reproduces the
// direct reduction even when the cached entry was populated with
// different source waveforms.
func TestROMCacheRebindsInputs(t *testing.T) {
	build := func(src *waveform.PWL) *mna.System {
		ckt := netlist.NewCircuit()
		ckt.AddDriver("d", "n1", src, 500)
		ckt.AddR("r1", "n1", "n2", 200)
		ckt.AddC("c1", "n1", "0", 10e-15)
		ckt.AddR("r2", "n2", "n3", 200)
		ckt.AddC("c2", "n2", "0", 10e-15)
		ckt.AddC("c3", "n3", "0", 10e-15)
		sys, err := mna.Build(ckt)
		if err != nil {
			t.Fatal(err)
		}
		return sys
	}
	reg := metrics.NewRegistry()
	rc := NewROMCache(reg)
	opt := lsim.Options{TStop: 2e-9, Step: 1e-12, InitDC: true}

	srcA := waveform.Ramp(2e-10, 1e-10, 0, 1.8)
	romA, err := rc.Reduce(context.Background(), build(srcA), 2)
	if err != nil {
		t.Fatal(err)
	}
	resA, err := romA.Run(opt)
	if err != nil {
		t.Fatal(err)
	}

	// Same matrices, different source: must hit and rebind.
	srcB := waveform.Ramp(4e-10, 2e-10, 1.8, 0)
	sysB := build(srcB)
	romB, err := rc.Reduce(context.Background(), sysB, 2)
	if err != nil {
		t.Fatal(err)
	}
	s := reg.Snapshot()
	if hits, misses, _ := s.CacheRatio("cache.rom"); hits != 1 || misses != 1 {
		t.Fatalf("rom hit/miss = %d/%d, want 1/1", hits, misses)
	}
	resB, err := romB.Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	wA, err := resA.Voltage("n3")
	if err != nil {
		t.Fatal(err)
	}
	wB, err := resB.Voltage("n3")
	if err != nil {
		t.Fatal(err)
	}
	if wA.At(1e-9) == wB.At(1e-9) {
		t.Fatal("rebound ROM ignored the new source waveform")
	}
	// And the rebound result matches a cold reduction of the same system.
	coldROM, err := NewROMCache(nil).Reduce(context.Background(), build(srcB), 2)
	if err != nil {
		t.Fatal(err)
	}
	coldRes, err := coldROM.Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	wCold, err := coldRes.Voltage("n3")
	if err != nil {
		t.Fatal(err)
	}
	for _, tt := range []float64{0.5e-9, 1e-9, 1.5e-9} {
		if math.Abs(wB.At(tt)-wCold.At(tt)) > 1e-12 {
			t.Fatalf("rebound ROM diverges from cold reduction at t=%g: %v vs %v",
				tt, wB.At(tt), wCold.At(tt))
		}
	}
}

// TestNilCachesPassThrough ensures the nil-receiver paths compute.
func TestNilCachesPassThrough(t *testing.T) {
	lib := device.NewLibrary(device.Default180())
	cell, err := lib.Cell("INVX2")
	if err != nil {
		t.Fatal(err)
	}
	var cc *CharCache
	if _, err := cc.RoughFit(context.Background(), cell, 100e-12, true, 20e-15); err != nil {
		t.Fatal(err)
	}
	var rc *ROMCache
	ckt := netlist.NewCircuit()
	ckt.AddDriver("d", "n1", waveform.Constant(0), 500)
	ckt.AddC("c1", "n1", "0", 10e-15)
	sys, err := mna.Build(ckt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rc.Reduce(context.Background(), sys, 1); err != nil {
		t.Fatal(err)
	}
}

// TestHashCircuitSensitivity: identical builds hash equal; any element
// change perturbs the hash.
func TestHashCircuitSensitivity(t *testing.T) {
	build := func(r float64) *netlist.Circuit {
		ckt := netlist.NewCircuit()
		ckt.AddR("r", "a", "b", r)
		ckt.AddC("c", "b", "0", 1e-15)
		ckt.AddDriver("d", "a", waveform.Constant(1.8), 100)
		return ckt
	}
	if hashCircuit(build(50)) != hashCircuit(build(50)) {
		t.Fatal("identical circuits hash differently")
	}
	if hashCircuit(build(50)) == hashCircuit(build(51)) {
		t.Fatal("changed resistor value did not change the hash")
	}
}
