package delaynoise

import (
	"context"
	"fmt"
	"time"

	"repro/internal/gatesim"
	"repro/internal/lsim"
	"repro/internal/mna"
	"repro/internal/netlist"
	"repro/internal/noiseerr"
	"repro/internal/thevenin"
	"repro/internal/waveform"
)

// driverChar is a characterized driver: its effective load and Thevenin
// model, with the model's time base shifted to the driver's actual input
// start time.
type driverChar struct {
	spec  DriverSpec
	ceff  float64
	model thevenin.Model
}

// engine carries the per-case state of one analysis.
type engine struct {
	ctx context.Context
	c   *Case
	opt Options

	interconnect *netlist.Circuit // loaded with receiver caps
	victim       driverChar
	aggs         []driverChar

	horizon float64
	step    float64
}

// newEngine validates the case and runs the two-pass driver
// characterization: a rough lumped-load Thevenin fit for every driver,
// then C-effective iterations for each driver with all other drivers
// held by their rough resistances.
func newEngine(ctx context.Context, c *Case, opt Options) (*engine, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	opt.defaults()
	e := &engine{ctx: ctx, c: c, opt: opt, interconnect: c.loadedInterconnect()}

	// Pass 1: rough lumped fits.
	type rough struct {
		rth  float64
		lump float64
	}
	vdd := c.vdd()
	roughOf := func(spec DriverSpec, lump float64) (rough, error) {
		m, err := opt.Chars.RoughFit(ctx, spec.Cell, spec.InputSlew, spec.Cell.InputRisingFor(spec.OutputRising), lump)
		if err != nil {
			return rough{}, err
		}
		return rough{rth: m.Rth, lump: lump}, nil
	}
	vLump := c.Net.VictimTotalCap() + c.Receiver.InputCap()
	vRough, err := roughOf(c.Victim, vLump)
	if err != nil {
		return nil, fmt.Errorf("delaynoise: victim rough fit: %w", err)
	}
	aRough := make([]rough, len(c.Aggressors))
	for k, a := range c.Aggressors {
		spec := c.Net.Spec.Aggressors[k]
		lump := spec.Line.CGround + spec.CCouple + c.aggLoad()
		aRough[k], err = roughOf(a, lump)
		if err != nil {
			return nil, fmt.Errorf("delaynoise: aggressor %d rough fit: %w", k, err)
		}
	}

	// Pass 2: C-effective per driver with the others held.
	holdOthers := func(skipVictim bool, skipAgg int) *netlist.Circuit {
		ckt := e.interconnect.Clone()
		if !skipVictim {
			ckt.AddDriver("__holdv", c.Net.VictimIn,
				waveform.Constant(c.Victim.initialOutput(vdd)), vRough.rth)
		}
		for k := range c.Aggressors {
			if k == skipAgg {
				continue
			}
			ckt.AddDriver(fmt.Sprintf("__holda%d", k), c.Net.AggIn[k],
				waveform.Constant(c.Aggressors[k].initialOutput(vdd)), aRough[k].rth)
		}
		return ckt
	}
	charOf := func(spec DriverSpec, net *netlist.Circuit, node string) (driverChar, error) {
		res, err := opt.Chars.Characterize(ctx, spec.Cell, spec.InputSlew, spec.Cell.InputRisingFor(spec.OutputRising), net, node)
		if err != nil {
			return driverChar{}, err
		}
		m := res.Model
		// Shift the model time base from the characterization frame to
		// the driver's actual input start.
		m.T0 += spec.InputStart - gatesim.InputStart
		return driverChar{spec: spec, ceff: res.Ceff, model: m}, nil
	}
	e.victim, err = charOf(c.Victim, holdOthers(true, -1), c.Net.VictimIn)
	if err != nil {
		return nil, fmt.Errorf("delaynoise: victim characterization: %w", err)
	}
	e.aggs = make([]driverChar, len(c.Aggressors))
	for k, a := range c.Aggressors {
		e.aggs[k], err = charOf(a, holdOthers(false, k), c.Net.AggIn[k])
		if err != nil {
			return nil, fmt.Errorf("delaynoise: aggressor %d characterization: %w", k, err)
		}
	}

	// Simulation horizon: past every transition plus a settling tail.
	end := e.victim.model.T0 + e.victim.model.Dt
	for _, a := range e.aggs {
		if t := a.model.T0 + a.model.Dt; t > end {
			end = t
		}
	}
	tail := 25 * e.victim.model.Rth * vLump
	if tail < 1.5e-9 {
		tail = 1.5e-9
	}
	e.horizon = end + tail
	e.step = opt.Step
	return e, nil
}

// probeSet is the list of nodes every linear run records.
func (e *engine) probes() []string {
	return []string{e.c.Net.VictimIn, e.c.sink()}
}

// runLinear simulates a fully assembled linear circuit and returns the
// waveforms at the standard probe nodes, optionally through a PRIMA
// reduction.
func (e *engine) runLinear(ckt *netlist.Circuit) (map[string]*waveform.PWL, error) {
	return e.runLinearProbes(ckt, e.probes())
}

// runLinearProbes is runLinear with an explicit probe list.
func (e *engine) runLinearProbes(ckt *netlist.Circuit, probes []string) (map[string]*waveform.PWL, error) {
	e.opt.Metrics.Counter(mSimLinear).Inc()
	start := time.Now()
	defer func() { e.opt.Metrics.Observe(noiseerr.StageSimulate.TimerName(), time.Since(start)) }()
	sys, err := mna.Build(ckt)
	if err != nil {
		return nil, err
	}
	opt := lsim.Options{TStop: e.horizon, Step: e.step, InitDC: true, Ctx: e.ctx}
	out := map[string]*waveform.PWL{}
	if q := e.opt.PRIMAOrder; q > 0 && q < sys.NumStates() {
		reduceStart := time.Now()
		rom, err := e.opt.ROMs.Reduce(e.ctx, sys, q)
		e.opt.Metrics.Observe(noiseerr.StageReduce.TimerName(), time.Since(reduceStart))
		if err != nil {
			return nil, noiseerr.InStage(noiseerr.StageReduce, err)
		}
		// PRIMA matches the first block moment, so the DC point of the
		// reduced system projects exactly onto the full DC solution; the
		// reduced InitDC start is therefore exact for these circuits.
		res, err := rom.RunContext(e.ctx, opt)
		if err != nil {
			return nil, err
		}
		for _, p := range probes {
			w, err := res.Voltage(p)
			if err != nil {
				return nil, err
			}
			out[p] = w
		}
		return out, nil
	}
	res, err := lsim.Run(sys, opt)
	if err != nil {
		return nil, err
	}
	for _, p := range probes {
		w, err := res.Voltage(p)
		if err != nil {
			return nil, err
		}
		out[p] = w
	}
	return out, nil
}

// aggressorNoise runs the superposition simulation for aggressor k: its
// Thevenin source transitions while the victim is held by rHoldVictim and
// every other aggressor by its own Thevenin resistance. It returns the
// noise (deviation from DC) at the receiver input and the victim driver
// output.
func (e *engine) aggressorNoise(k int, rHoldVictim float64) (recvIn, drvOut *waveform.PWL, err error) {
	c := e.c
	vdd := c.vdd()
	ckt := e.interconnect.Clone()
	ckt.AddDriver("__agg", c.Net.AggIn[k], e.aggs[k].model.SourceWaveform(), e.aggs[k].model.Rth)
	ckt.AddDriver("__vic", c.Net.VictimIn,
		waveform.Constant(c.Victim.initialOutput(vdd)), rHoldVictim)
	for j := range e.aggs {
		if j == k {
			continue
		}
		ckt.AddDriver(fmt.Sprintf("__hold%d", j), c.Net.AggIn[j],
			waveform.Constant(c.Aggressors[j].initialOutput(vdd)), e.aggs[j].model.Rth)
	}
	ws, err := e.runLinear(ckt)
	if err != nil {
		return nil, nil, fmt.Errorf("delaynoise: aggressor %d sim: %w", k, err)
	}
	recvIn = deviation(ws[c.sink()])
	drvOut = deviation(ws[c.Net.VictimIn])
	return recvIn, drvOut, nil
}

// victimNoiseless runs the victim-switching superposition simulation (all
// aggressors held) and returns the noiseless waveforms at the receiver
// input and victim driver output. With Options.AggressorTransient set,
// the aggressor holding resistances are upgraded to transient values —
// the extension the paper sketches at the end of Section 1 ("the
// proposed approach can also be extended to the shorted aggressor driver
// models"): the victim's own transition injects noise on the aggressor
// nets, and the aggregate Thevenin resistance misrepresents how the
// aggressor drivers absorb it, which feeds back into the victim waveform
// through the coupling.
func (e *engine) victimNoiseless() (recvIn, drvOut *waveform.PWL, err error) {
	rHolds := make([]float64, len(e.aggs))
	for j := range e.aggs {
		rHolds[j] = e.aggs[j].model.Rth
	}
	recvIn, drvOut, aggOuts, err := e.victimNoiselessWith(rHolds)
	if err != nil {
		return nil, nil, err
	}
	if !e.opt.AggressorTransient {
		return recvIn, drvOut, nil
	}
	// Upgrade each aggressor's holding resistance from the noise the
	// victim injected on it, then re-run once (the same single extra
	// iteration the victim-side flow uses).
	for j := range e.aggs {
		spec := e.aggs[j].spec
		vn := aggOuts[j].Shift(gatesim.InputStart - spec.InputStart)
		hr, err := e.opt.Chars.HoldRes(e.ctx, spec.Cell, spec.InputSlew,
			spec.Cell.InputRisingFor(spec.OutputRising),
			e.aggs[j].ceff, e.aggs[j].model.Rth, vn)
		if err != nil {
			return nil, nil, fmt.Errorf("delaynoise: aggressor %d transient hold: %w", j, err)
		}
		rHolds[j] = hr.Rtr
	}
	recvIn, drvOut, _, err = e.victimNoiselessWith(rHolds)
	return recvIn, drvOut, err
}

// victimNoiselessWith runs the victim-switching simulation with explicit
// aggressor holding resistances and additionally returns the noise each
// aggressor driver output sees (deviation waveforms, one per aggressor).
func (e *engine) victimNoiselessWith(rHolds []float64) (recvIn, drvOut *waveform.PWL, aggOuts []*waveform.PWL, err error) {
	c := e.c
	vdd := c.vdd()
	ckt := e.interconnect.Clone()
	ckt.AddDriver("__vic", c.Net.VictimIn, e.victim.model.SourceWaveform(), e.victim.model.Rth)
	for j := range e.aggs {
		ckt.AddDriver(fmt.Sprintf("__hold%d", j), c.Net.AggIn[j],
			waveform.Constant(c.Aggressors[j].initialOutput(vdd)), rHolds[j])
	}
	ws, err := e.runLinearProbes(ckt, append(e.probes(), c.Net.AggIn...))
	if err != nil {
		return nil, nil, nil, fmt.Errorf("delaynoise: victim sim: %w", err)
	}
	aggOuts = make([]*waveform.PWL, len(c.Net.AggIn))
	for j, node := range c.Net.AggIn {
		aggOuts[j] = deviation(ws[node])
	}
	return ws[c.sink()], ws[c.Net.VictimIn], aggOuts, nil
}

// deviation subtracts the waveform's initial value, turning an
// absolute-level simulation into a noise (delta) waveform.
func deviation(w *waveform.PWL) *waveform.PWL {
	return w.Offset(-w.At(w.Start()))
}
