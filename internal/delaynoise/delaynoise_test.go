package delaynoise

import (
	"math"
	"testing"

	"repro/internal/device"
	"repro/internal/rcnet"
)

var (
	tech = device.Default180()
	lib  = device.NewLibrary(tech)
)

func cellOf(t testing.TB, name string) *device.Cell {
	t.Helper()
	c, err := lib.Cell(name)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// testCase builds the canonical single-aggressor cluster used across the
// package tests: weak victim, strong aggressor, heavy coupling — the
// regime where the Thevenin holding resistance visibly underestimates
// the injected noise.
func testCase(t testing.TB) *Case {
	net := rcnet.Build(rcnet.CoupledSpec{
		Victim: rcnet.LineSpec{Name: "v", Segments: 5, RTotal: 500, CGround: 30e-15},
		Aggressors: []rcnet.AggressorSpec{
			{Line: rcnet.LineSpec{Name: "a0", Segments: 5, RTotal: 300, CGround: 25e-15}, CCouple: 35e-15, From: 0, To: 1},
		},
	})
	return &Case{
		Net: net,
		Victim: DriverSpec{
			Cell: cellOf(t, "INVX1"), InputSlew: 250e-12,
			OutputRising: true, InputStart: 200e-12,
		},
		Aggressors: []DriverSpec{{
			Cell: cellOf(t, "INVX8"), InputSlew: 100e-12,
			OutputRising: false, InputStart: 300e-12,
		}},
		Receiver:     cellOf(t, "INVX2"),
		ReceiverLoad: 10e-15,
	}
}

func TestValidate(t *testing.T) {
	c := testCase(t)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := *c
	bad.Aggressors = nil
	if err := bad.Validate(); err == nil {
		t.Error("expected error for aggressor count mismatch")
	}
	bad = *c
	bad.Victim.InputSlew = 0
	if err := bad.Validate(); err == nil {
		t.Error("expected error for zero slew")
	}
	bad = *c
	bad.Receiver = nil
	if err := bad.Validate(); err == nil {
		t.Error("expected error for nil receiver")
	}
}

func TestAnalyzeTheveninBaseline(t *testing.T) {
	c := testCase(t)
	res, err := Analyze(c, Options{Hold: HoldThevenin, Align: AlignExhaustive})
	if err != nil {
		t.Fatal(err)
	}
	if res.VictimRtr != res.VictimRth {
		t.Fatalf("Thevenin hold must keep Rtr == Rth (%v vs %v)", res.VictimRtr, res.VictimRth)
	}
	if res.DelayNoise <= 0 {
		t.Fatalf("worst-case delay noise %v must be positive", res.DelayNoise)
	}
	if res.QuietCombinedDelay <= 0 {
		t.Fatalf("quiet combined delay %v must be positive", res.QuietCombinedDelay)
	}
	if res.Pulse.Height >= 0 {
		t.Fatalf("falling aggressor on rising victim must give negative noise, got %v", res.Pulse.Height)
	}
	if res.Iterations != 1 {
		t.Fatalf("Thevenin flow should not iterate, got %d", res.Iterations)
	}
}

func TestAnalyzeTransientHold(t *testing.T) {
	c := testCase(t)
	res, err := Analyze(c, Options{Hold: HoldTransient, Align: AlignExhaustive})
	if err != nil {
		t.Fatal(err)
	}
	if res.VictimRtr == res.VictimRth {
		t.Fatal("transient hold should compute a distinct Rtr")
	}
	// The victim switching mid-noise is saturated: Rtr > Rth, and the
	// noise pulse computed with Rtr must be taller than with Rth.
	if res.VictimRtr <= res.VictimRth {
		t.Errorf("expected Rtr (%v) > Rth (%v) for mid-transition noise", res.VictimRtr, res.VictimRth)
	}
	thev, err := Analyze(c, Options{Hold: HoldThevenin, Align: AlignExhaustive})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Pulse.Height) <= math.Abs(thev.Pulse.Height) {
		t.Errorf("Rtr noise height %v should exceed Thevenin %v",
			res.Pulse.Height, thev.Pulse.Height)
	}
	if res.Iterations < 1 || res.Iterations > 3 {
		t.Errorf("iterations = %d, expected 1-3 (paper: 1-2)", res.Iterations)
	}
}

// TestRtrBeatsTheveninAgainstGolden is the single-net version of the
// paper's Figure 13 claim: the delay noise from the linear flow with the
// transient holding resistance tracks the full nonlinear reference much
// more closely than the Thevenin baseline, which underestimates.
func TestRtrBeatsTheveninAgainstGolden(t *testing.T) {
	c := testCase(t)
	rtr, err := Analyze(c, Options{Hold: HoldTransient, Align: AlignExhaustive})
	if err != nil {
		t.Fatal(err)
	}
	thev, err := Analyze(c, Options{Hold: HoldThevenin, Align: AlignExhaustive})
	if err != nil {
		t.Fatal(err)
	}
	// Evaluate the golden nonlinear delay noise at the same alignment the
	// Rtr flow chose.
	shifts := PeakShifts(rtr.NoisePeakTimes, rtr.TPeak)
	golden, err := GoldenAtShifts(c, shifts)
	if err != nil {
		t.Fatal(err)
	}
	if golden.DelayNoise <= 0 {
		t.Fatalf("golden delay noise %v must be positive", golden.DelayNoise)
	}
	errRtr := math.Abs(rtr.DelayNoise - golden.DelayNoise)
	errThev := math.Abs(thev.DelayNoise - golden.DelayNoise)
	t.Logf("golden %.2fps, rtr %.2fps (err %.2fps), thevenin %.2fps (err %.2fps)",
		golden.DelayNoise*1e12, rtr.DelayNoise*1e12, errRtr*1e12,
		thev.DelayNoise*1e12, errThev*1e12)
	if errRtr >= errThev {
		t.Errorf("Rtr error (%v) should beat Thevenin error (%v)", errRtr, errThev)
	}
	// The Thevenin baseline must underestimate (the paper's observation).
	if thev.DelayNoise >= golden.DelayNoise {
		t.Errorf("Thevenin flow should underestimate golden: %v vs %v",
			thev.DelayNoise, golden.DelayNoise)
	}
}

func TestWindowConstraint(t *testing.T) {
	c := testCase(t)
	free, err := Analyze(c, Options{Hold: HoldThevenin, Align: AlignExhaustive})
	if err != nil {
		t.Fatal(err)
	}
	// Force the alignment window to end well before the free worst case.
	win := &Window{Lo: 0, Hi: free.TPeak - 150e-12}
	constrained, err := Analyze(c, Options{Hold: HoldThevenin, Align: AlignExhaustive, Window: win})
	if err != nil {
		t.Fatal(err)
	}
	if constrained.TPeak > win.Hi+1e-15 {
		t.Fatalf("TPeak %v violates window hi %v", constrained.TPeak, win.Hi)
	}
	if constrained.DelayNoise > free.DelayNoise+1e-13 {
		t.Fatalf("constrained noise %v cannot exceed free %v", constrained.DelayNoise, free.DelayNoise)
	}
}

func TestAlignmentMethodOrdering(t *testing.T) {
	// Exhaustive must dominate the receiver-input baseline on final
	// receiver-output delay noise (it optimizes exactly that).
	c := testCase(t)
	exh, err := Analyze(c, Options{Hold: HoldThevenin, Align: AlignExhaustive})
	if err != nil {
		t.Fatal(err)
	}
	base, err := Analyze(c, Options{Hold: HoldThevenin, Align: AlignReceiverInput})
	if err != nil {
		t.Fatal(err)
	}
	if base.DelayNoise > exh.DelayNoise+1e-13 {
		t.Fatalf("receiver-input baseline (%v) beat exhaustive (%v)",
			base.DelayNoise, exh.DelayNoise)
	}
}

func TestPrecharRequiresTable(t *testing.T) {
	c := testCase(t)
	if _, err := Analyze(c, Options{Align: AlignPrechar}); err == nil {
		t.Fatal("expected error for missing prechar table")
	}
}

func TestGoldenWorstCaseSweep(t *testing.T) {
	c := testCase(t)
	g, err := GoldenWorstCase(c, 400e-12, 9)
	if err != nil {
		t.Fatal(err)
	}
	if g.DelayNoise <= 0 {
		t.Fatalf("golden worst delay noise %v", g.DelayNoise)
	}
	if len(g.Sweep) < 9 {
		t.Fatalf("sweep has %d points", len(g.Sweep))
	}
	// The reported worst case must match the sweep maximum.
	max := math.Inf(-1)
	for _, p := range g.Sweep {
		if p.DelayNoise > max {
			max = p.DelayNoise
		}
	}
	if g.DelayNoise < max {
		t.Fatalf("reported %v below sweep max %v", g.DelayNoise, max)
	}
}

func TestGoldenShiftValidation(t *testing.T) {
	c := testCase(t)
	if _, err := GoldenAtShifts(c, []float64{0, 0}); err == nil {
		t.Fatal("expected error for shift count mismatch")
	}
}

func TestPRIMAPathMatchesFull(t *testing.T) {
	c := testCase(t)
	full, err := Analyze(c, Options{Hold: HoldThevenin, Align: AlignReceiverInput})
	if err != nil {
		t.Fatal(err)
	}
	red, err := Analyze(c, Options{Hold: HoldThevenin, Align: AlignReceiverInput, PRIMAOrder: 8})
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(full.DelayNoise - red.DelayNoise); d > 0.1*math.Abs(full.DelayNoise)+1e-12 {
		t.Fatalf("PRIMA path diverges: %v vs %v", red.DelayNoise, full.DelayNoise)
	}
}

func TestTreeSinkAnalysis(t *testing.T) {
	tree := rcnet.BuildTree(rcnet.TreeSpec{
		Coupled: rcnet.CoupledSpec{
			Victim: rcnet.LineSpec{Name: "v", Segments: 6, RTotal: 400, CGround: 30e-15},
			Aggressors: []rcnet.AggressorSpec{
				{Line: rcnet.LineSpec{Name: "a", Segments: 6, RTotal: 300, CGround: 25e-15}, CCouple: 30e-15, From: 0, To: 1},
			},
		},
		Branches: []rcnet.BranchSpec{
			{At: 0.5, Line: rcnet.LineSpec{Name: "b", Segments: 3, RTotal: 200, CGround: 12e-15}},
		},
	})
	recv := cellOf(t, "INVX2")
	mkCase := func(sink string, other string) *Case {
		return &Case{
			Net: tree.CoupledNet,
			Victim: DriverSpec{Cell: cellOf(t, "INVX2"), InputSlew: 300e-12,
				OutputRising: true, InputStart: 200e-12},
			Aggressors: []DriverSpec{{Cell: cellOf(t, "INVX8"), InputSlew: 80e-12,
				OutputRising: false, InputStart: 400e-12}},
			Receiver:     recv,
			ReceiverLoad: 10e-15,
			Sink:         sink,
			ExtraLoads:   map[string]float64{other: recv.InputCap()},
		}
	}
	sinks := tree.Sinks()
	trunk, err := Analyze(mkCase(sinks[0], sinks[1]), Options{Hold: HoldTransient, Align: AlignExhaustive})
	if err != nil {
		t.Fatal(err)
	}
	branch, err := Analyze(mkCase(sinks[1], sinks[0]), Options{Hold: HoldTransient, Align: AlignExhaustive})
	if err != nil {
		t.Fatal(err)
	}
	if trunk.DelayNoise <= 0 || branch.DelayNoise <= 0 {
		t.Fatalf("delay noise trunk %v, branch %v", trunk.DelayNoise, branch.DelayNoise)
	}
	// The trunk sink (farther and more coupled) should see the larger
	// quiet delay; both analyses must be internally consistent with the
	// nonlinear reference.
	golden, err := GoldenAtShifts(mkCase(sinks[1], sinks[0]), PeakShifts(branch.NoisePeakTimes, branch.TPeak))
	if err != nil {
		t.Fatal(err)
	}
	if golden.DelayNoise <= 0 {
		t.Fatalf("branch golden %v", golden.DelayNoise)
	}
	if math.Abs(branch.DelayNoise-golden.DelayNoise) > 0.5*golden.DelayNoise {
		t.Fatalf("branch analysis %v far from golden %v", branch.DelayNoise, golden.DelayNoise)
	}
}
