package delaynoise_test

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/delaynoise"
	"repro/internal/device"
	"repro/internal/linalg"
	"repro/internal/metrics"
	"repro/internal/mna"
	"repro/internal/thevenin"
	"repro/internal/waveform"
)

// A snapshot taken from one cache and seeded into a fresh one must make
// the second cache hit where the first one did — with the seeded value,
// not a recomputation.
func TestCharSnapshotSeedsWarmHits(t *testing.T) {
	lib := device.NewLibrary(device.Default180())
	cell := lib.Cells["INVX2"]

	reg1 := metrics.NewRegistry()
	cc1 := delaynoise.NewCharCache(0, reg1)
	m1, err := cc1.RoughFit(context.Background(), cell, 80e-12, true, 20e-15)
	if err != nil {
		t.Fatal(err)
	}
	snap := cc1.Snapshot()
	if len(snap.Rough) != 1 || snap.BucketRes != cc1.Res() {
		t.Fatalf("snapshot = %+v, want one rough entry at res %g", snap, cc1.Res())
	}

	reg2 := metrics.NewRegistry()
	cc2 := delaynoise.NewCharCache(0, reg2)
	if !cc2.Seed(snap) {
		t.Fatal("Seed into a same-resolution cache must succeed")
	}
	if cc2.Len() != 1 {
		t.Fatalf("seeded cache Len = %d, want 1", cc2.Len())
	}
	m2, err := cc2.RoughFit(context.Background(), cell, 80e-12, true, 20e-15)
	if err != nil {
		t.Fatal(err)
	}
	if m2 != m1 {
		t.Fatalf("warm RoughFit = %+v, want the seeded model %+v", m2, m1)
	}
	if hits := reg2.Counter("cache.char.rough.hit").Value(); hits != 1 {
		t.Fatalf("cache.char.rough.hit = %d, want 1 (seeded entry must hit)", hits)
	}
}

func TestCharSeedRefusesMismatchedResolution(t *testing.T) {
	snap := &delaynoise.CharSnapshot{
		BucketRes: 0.10,
		Rough:     []delaynoise.RoughEntry{{Cell: "INVX1", SlewBucket: 3, Model: thevenin.Model{Rth: 1e3}}},
	}
	cc := delaynoise.NewCharCache(0.05, nil)
	if cc.Seed(snap) {
		t.Fatal("Seed must refuse a snapshot taken under a different bucket resolution")
	}
	if cc.Len() != 0 {
		t.Fatal("refused seed must not install entries")
	}
	var nilCC *delaynoise.CharCache
	if nilCC.Seed(snap) || nilCC.Snapshot() != nil || nilCC.Len() != 0 {
		t.Fatal("nil cache must no-op")
	}
}

func TestCharSeedDoesNotClobberResident(t *testing.T) {
	lib := device.NewLibrary(device.Default180())
	cell := lib.Cells["INVX1"]
	cc := delaynoise.NewCharCache(0, nil)
	resident, err := cc.RoughFit(context.Background(), cell, 60e-12, false, 15e-15)
	if err != nil {
		t.Fatal(err)
	}
	// Re-seed the same key with a poisoned model: the resident must win.
	snap := cc.Snapshot()
	for i := range snap.Rough {
		snap.Rough[i].Model = thevenin.Model{Rth: -1}
	}
	if !cc.Seed(snap) {
		t.Fatal("seed refused")
	}
	got, err := cc.RoughFit(context.Background(), cell, 60e-12, false, 15e-15)
	if err != nil {
		t.Fatal(err)
	}
	if got != resident {
		t.Fatal("Seed clobbered a resident entry")
	}
}

func ladder(t *testing.T, n int) *mna.System {
	t.Helper()
	g := linalg.NewMatrix(n, n)
	c := linalg.NewMatrix(n, n)
	b := linalg.NewMatrix(n, 1)
	for i := 0; i < n; i++ {
		g.Add(i, i, 2)
		if i+1 < n {
			g.Add(i, i+1, -1)
			g.Add(i+1, i, -1)
		}
		c.Add(i, i, 1e-15)
	}
	b.Add(0, 0, 1)
	in := waveform.New([]float64{0, 1e-9}, []float64{0, 1.8})
	sys, err := mna.NewSystem(g, c, b, []*waveform.PWL{in}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestROMSnapshotSeedsWarmHits(t *testing.T) {
	sys := ladder(t, 8)
	reg1 := metrics.NewRegistry()
	rc1 := delaynoise.NewROMCache(reg1)
	rom1, err := rc1.Reduce(context.Background(), sys, 2)
	if err != nil {
		t.Fatal(err)
	}
	entries := rc1.Snapshot()
	if len(entries) != 1 {
		t.Fatalf("Snapshot has %d entries, want 1", len(entries))
	}

	reg2 := metrics.NewRegistry()
	rc2 := delaynoise.NewROMCache(reg2)
	rc2.Seed(entries)
	if rc2.Len() != 1 {
		t.Fatalf("seeded ROM cache Len = %d, want 1", rc2.Len())
	}
	rom2, err := rc2.Reduce(context.Background(), sys, 2)
	if err != nil {
		t.Fatal(err)
	}
	if hits := reg2.Counter("cache.rom.hit").Value(); hits != 1 {
		t.Fatalf("cache.rom.hit = %d, want 1 (seeded reduction must hit)", hits)
	}
	if rom2.Order != rom1.Order || !reflect.DeepEqual(rom2.V, rom1.V) {
		t.Fatal("seeded ROM differs from the original reduction")
	}
}

func TestROMSnapshotPreservesIdentityProjection(t *testing.T) {
	sys := ladder(t, 3)
	rc := delaynoise.NewROMCache(nil)
	rom, err := rc.Reduce(context.Background(), sys, 99) // q >= n: identity
	if err != nil {
		t.Fatal(err)
	}
	if rom.Full() != rom.Reduced {
		t.Fatal("identity projection must alias full and reduced")
	}
	entries := rc.Snapshot()
	if len(entries) != 1 || entries[0].Full != nil {
		t.Fatalf("identity projection must persist with Full omitted, got %+v", entries)
	}
	rc2 := delaynoise.NewROMCache(nil)
	rc2.Seed(entries)
	rom2, err := rc2.Reduce(context.Background(), sys, 99)
	if err != nil {
		t.Fatal(err)
	}
	if rom2.Full() != rom2.Reduced {
		t.Fatal("aliasing must survive the snapshot/seed round-trip")
	}
}

func TestROMSeedSkipsMalformedEntries(t *testing.T) {
	rc := delaynoise.NewROMCache(nil)
	rc.Seed([]delaynoise.ROMEntry{{System: 1, Q: 2}}) // nil Reduced/V: skipped
	if rc.Len() != 0 {
		t.Fatal("malformed entries must be skipped, not installed")
	}
}
