package delaynoise

// Metric-name constant table (enforced by noiselint/metricflow): one
// home for every cache.* and sim.* series the analysis emits. The
// cache base names are completed with mHitSuffix/mMissSuffix by
// CharCache.count, so a base and its two outcomes cannot drift apart.
const (
	mCacheCharRough = "cache.char.rough"
	mCacheCharFull  = "cache.char.full"
	mCacheHoldres   = "cache.holdres"
	mCacheROMHit    = "cache.rom.hit"
	mCacheROMMiss   = "cache.rom.miss"

	mHitSuffix  = ".hit"
	mMissSuffix = ".miss"

	mSimLinear            = "sim.linear"
	mSimNonlinearReceiver = "sim.nonlinear.receiver"
)
