package delaynoise

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/nlsim"
	"repro/internal/noiseerr"
	"repro/internal/waveform"
)

// GoldenResult is the outcome of full nonlinear reference simulations.
type GoldenResult struct {
	QuietDelay float64 // combined delay with aggressors quiet, s
	// DelayNoise is the extra combined delay at the evaluated (or worst
	// found) aggressor shift.
	DelayNoise float64
	// Shift is the common time offset applied to all aggressor inputs
	// relative to their nominal start times.
	Shift float64
	// Sweep holds (shift, delayNoise) pairs for exhaustive searches.
	Sweep []GoldenPoint
}

// GoldenPoint is one exhaustive-search sample.
type GoldenPoint struct {
	Shift      float64
	DelayNoise float64
}

// goldenCircuit assembles the full nonlinear circuit: interconnect,
// transistor-level victim and aggressor drivers, and the receiver.
// aggShifts gives each aggressor's input-start offset from nominal;
// quiet aggressors (aggOn false) hold their initial input level.
func (c *Case) goldenCircuit(aggShifts []float64, aggOn bool) (*nlsim.Circuit, error) {
	vdd := c.vdd()
	ckt := nlsim.NewCircuit()
	ckt.ImportLinear(c.loadedInterconnect())

	vin := c.Victim.inputWaveform(vdd)
	in := ckt.Fixed("__vicin", vin)
	ckt.AddCell(c.Victim.Cell, "uvic", in, ckt.Node(c.Net.VictimIn))

	for k, a := range c.Aggressors {
		var w *waveform.PWL
		if aggOn {
			w = a.inputWaveform(vdd).Shift(aggShifts[k])
		} else {
			w = waveform.Constant(a.inputWaveform(vdd).At(0))
		}
		ain := ckt.Fixed(fmt.Sprintf("__aggin%d", k), w)
		ckt.AddCell(a.Cell, fmt.Sprintf("uagg%d", k), ain, ckt.Node(c.Net.AggIn[k]))
	}

	rin := ckt.Node(c.sink())
	rout := ckt.Node("__recvout")
	ckt.AddCell(c.Receiver, "urecv", rin, rout)
	if c.ReceiverLoad > 0 {
		ckt.AddC(rout, nlsim.Ground, c.ReceiverLoad)
	}
	return ckt, nil
}

// goldenDelay runs one full nonlinear simulation and returns the 50%
// crossing times of the victim driver output and the receiver output
// (final crossings, robust to noise glitches). Delay noise is the shift
// of the receiver-output crossing between noisy and quiet runs with the
// victim input fixed; the driver-output crossing of the *quiet* run
// anchors the combined-delay measurement.
func (c *Case) goldenDelay(ctx context.Context, aggShifts []float64, aggOn bool, horizon, step float64) (drv50, out50 float64, err error) {
	ckt, err := c.goldenCircuit(aggShifts, aggOn)
	if err != nil {
		return 0, 0, err
	}
	res, err := nlsim.Run(ckt, nlsim.Options{TStop: horizon, Step: step, Ctx: ctx})
	if err != nil {
		return 0, 0, fmt.Errorf("delaynoise: golden sim: %w", err)
	}
	vdd := c.vdd()
	drv, err := res.Voltage(c.Net.VictimIn)
	if err != nil {
		return 0, 0, err
	}
	out, err := res.Voltage("__recvout")
	if err != nil {
		return 0, 0, err
	}
	if c.Victim.OutputRising {
		drv50, err = drv.LastCrossRising(vdd / 2)
	} else {
		drv50, err = drv.LastCrossFalling(vdd / 2)
	}
	if err == nil {
		if c.Receiver.OutputRisingFor(c.Victim.OutputRising) {
			out50, err = out.LastCrossRising(vdd / 2)
		} else {
			out50, err = out.LastCrossFalling(vdd / 2)
		}
	}
	if err != nil {
		return 0, 0, noiseerr.Numericalf("delaynoise: golden crossings: %w", err)
	}
	return drv50, out50, nil
}

// goldenHorizon estimates the simulation window.
func (c *Case) goldenHorizon(maxShift float64) (horizon, step float64) {
	end := c.Victim.InputStart + c.Victim.InputSlew
	for _, a := range c.Aggressors {
		if t := a.InputStart + a.InputSlew + maxShift; t > end {
			end = t
		}
	}
	horizon = end + 2.5e-9
	step = 1e-12
	return horizon, step
}

// GoldenAtShifts evaluates the nonlinear delay noise with aggressor k's
// input offset by shifts[k] from its nominal start time (use equal
// entries to move all aggressors together, or per-aggressor values to
// realize a peak-aligned composite at a chosen time).
func GoldenAtShifts(c *Case, shifts []float64) (*GoldenResult, error) {
	return GoldenAtShiftsContext(context.Background(), c, shifts)
}

// GoldenAtShiftsContext is GoldenAtShifts with cancellation support for
// the two full nonlinear simulations.
func GoldenAtShiftsContext(ctx context.Context, c *Case, shifts []float64) (*GoldenResult, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if len(shifts) != len(c.Aggressors) {
		return nil, noiseerr.Invalidf("delaynoise: %d shifts for %d aggressors", len(shifts), len(c.Aggressors))
	}
	maxShift := 0.0
	for _, s := range shifts {
		if a := math.Abs(s); a > maxShift {
			maxShift = a
		}
	}
	horizon, step := c.goldenHorizon(maxShift)
	drvQ, outQ, err := c.goldenDelay(ctx, shifts, false, horizon, step)
	if err != nil {
		return nil, err
	}
	_, outN, err := c.goldenDelay(ctx, shifts, true, horizon, step)
	if err != nil {
		return nil, err
	}
	return &GoldenResult{QuietDelay: outQ - drvQ, DelayNoise: outN - outQ, Shift: shifts[0]}, nil
}

// GoldenAtShift evaluates the nonlinear delay noise with all aggressor
// inputs offset by the same shift from their nominal start times.
func GoldenAtShift(c *Case, shift float64) (*GoldenResult, error) {
	shifts := make([]float64, len(c.Aggressors))
	for k := range shifts {
		shifts[k] = shift
	}
	return GoldenAtShifts(c, shifts)
}

// GoldenWorstCase exhaustively searches the common aggressor shift for
// the maximum nonlinear delay noise (the Fig 14 x-axis reference). The
// search spans [-span, +span] around the nominal alignment with nGrid
// points plus one refinement pass.
func GoldenWorstCase(c *Case, span float64, nGrid int) (*GoldenResult, error) {
	return GoldenWorstCaseContext(context.Background(), c, span, nGrid)
}

// GoldenWorstCaseContext is GoldenWorstCase with cancellation support,
// checked at every search grid point and inside each simulation.
func GoldenWorstCaseContext(ctx context.Context, c *Case, span float64, nGrid int) (*GoldenResult, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if nGrid < 5 {
		nGrid = 5
	}
	horizon, step := c.goldenHorizon(span)
	drvQ, outQ, err := c.goldenDelay(ctx, make([]float64, len(c.Aggressors)), false, horizon, step)
	if err != nil {
		return nil, err
	}
	eval := func(shift float64) (float64, error) {
		shifts := make([]float64, len(c.Aggressors))
		for k := range shifts {
			shifts[k] = shift
		}
		_, outN, err := c.goldenDelay(ctx, shifts, true, horizon, step)
		if err != nil {
			return 0, err
		}
		return outN - outQ, nil
	}
	res := &GoldenResult{QuietDelay: outQ - drvQ}
	best, bestShift := math.Inf(-1), 0.0
	stepSize := 2 * span / float64(nGrid-1)
	for i := 0; i < nGrid; i++ {
		shift := -span + float64(i)*stepSize
		dn, err := eval(shift)
		if err != nil {
			if errors.Is(err, noiseerr.ErrCanceled) {
				return nil, err
			}
			continue
		}
		res.Sweep = append(res.Sweep, GoldenPoint{Shift: shift, DelayNoise: dn})
		if dn > best {
			best, bestShift = dn, shift
		}
	}
	if math.IsInf(best, -1) {
		return nil, noiseerr.Convergencef("delaynoise: golden search found no valid alignment")
	}
	for _, shift := range []float64{bestShift - stepSize/2, bestShift + stepSize/2} {
		dn, err := eval(shift)
		if err != nil {
			if errors.Is(err, noiseerr.ErrCanceled) {
				return nil, err
			}
			continue
		}
		res.Sweep = append(res.Sweep, GoldenPoint{Shift: shift, DelayNoise: dn})
		if dn > best {
			best, bestShift = dn, shift
		}
	}
	res.DelayNoise = best
	res.Shift = bestShift
	return res, nil
}

// GoldenWaveforms runs the full nonlinear circuit twice (aggressors
// switching at the given shifts, then quiet) and returns the noisy and
// quiet receiver-input waveforms.
func GoldenWaveforms(c *Case, shifts []float64) (noisy, quiet *waveform.PWL, err error) {
	return GoldenWaveformsContext(context.Background(), c, shifts)
}

// GoldenWaveformsContext is GoldenWaveforms with cancellation support.
func GoldenWaveformsContext(ctx context.Context, c *Case, shifts []float64) (noisy, quiet *waveform.PWL, err error) {
	if err := c.Validate(); err != nil {
		return nil, nil, err
	}
	if len(shifts) != len(c.Aggressors) {
		return nil, nil, noiseerr.Invalidf("delaynoise: %d shifts for %d aggressors", len(shifts), len(c.Aggressors))
	}
	maxShift := 0.0
	for _, s := range shifts {
		if a := math.Abs(s); a > maxShift {
			maxShift = a
		}
	}
	horizon, step := c.goldenHorizon(maxShift)
	run := func(aggOn bool) (*waveform.PWL, error) {
		ckt, err := c.goldenCircuit(shifts, aggOn)
		if err != nil {
			return nil, err
		}
		res, err := nlsim.Run(ckt, nlsim.Options{TStop: horizon, Step: step, Ctx: ctx})
		if err != nil {
			return nil, err
		}
		return res.Voltage(c.sink())
	}
	if noisy, err = run(true); err != nil {
		return nil, nil, err
	}
	if quiet, err = run(false); err != nil {
		return nil, nil, err
	}
	return noisy, quiet, nil
}

// GoldenNoiseWaveform returns the difference of the noisy and quiet
// receiver-input waveforms — the true noise injected on the switching
// victim (the nonlinear curve of the paper's Figure 2).
func GoldenNoiseWaveform(c *Case, shifts []float64) (*waveform.PWL, error) {
	noisy, quiet, err := GoldenWaveforms(c, shifts)
	if err != nil {
		return nil, err
	}
	return waveform.Sub(noisy, quiet), nil
}

// PeakShifts converts a chosen composite peak time into per-aggressor
// input shifts: noise moves one-for-one with the aggressor source in an
// LTI network, so shifting aggressor k by tPeak minus its nominal noise
// peak time places every individual peak at tPeak (the peak-aligned
// composite of §3.1). nominalPeaks are the receiver-input noise peak
// times from the linear analysis at nominal aggressor timing.
func PeakShifts(nominalPeaks []float64, tPeak float64) []float64 {
	out := make([]float64, len(nominalPeaks))
	for k, p := range nominalPeaks {
		out[k] = tPeak - p
	}
	return out
}
