// Package delaynoise is the per-net analysis engine of the reproduction:
// it combines driver characterization (C-effective + Thevenin), the
// linear superposition flow over the coupled interconnect, the transient
// holding resistance of Section 2, and the aggressor alignment of
// Section 3 into the paper's overall iterative method, and provides the
// full nonlinear ("SPICE") reference for validation.
package delaynoise

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/netlist"
	"repro/internal/noiseerr"
	"repro/internal/rcnet"
	"repro/internal/waveform"
)

// DriverSpec describes one driving gate of the coupled cluster.
type DriverSpec struct {
	Cell         *device.Cell
	InputSlew    float64 // driver input transition time (0-100%), s
	OutputRising bool    // direction of the driver's *output* transition
	InputStart   float64 // nominal start time of the driver's input ramp, s
}

// inputWaveform builds the driver's input ramp in the direction that
// yields the requested output transition for the cell's polarity.
func (d DriverSpec) inputWaveform(vdd float64) *waveform.PWL {
	if d.Cell.InputRisingFor(d.OutputRising) {
		return waveform.Ramp(d.InputStart, d.InputSlew, 0, vdd)
	}
	return waveform.Ramp(d.InputStart, d.InputSlew, vdd, 0)
}

// initialOutput is the driver output rail before the transition.
func (d DriverSpec) initialOutput(vdd float64) float64 {
	if d.OutputRising {
		return 0
	}
	return vdd
}

// finalOutput is the driver output rail after the transition.
func (d DriverSpec) finalOutput(vdd float64) float64 {
	if d.OutputRising {
		return vdd
	}
	return 0
}

// Case is one victim/aggressor cluster to analyze.
type Case struct {
	Net        *rcnet.CoupledNet
	Victim     DriverSpec
	Aggressors []DriverSpec // one per Net.AggIn, in order

	Receiver     *device.Cell
	ReceiverLoad float64 // lumped load at the receiver output, F
	// AggLoad is the lumped receiver-input capacitance at each aggressor
	// far end (default 5 fF when zero).
	AggLoad float64

	// Sink overrides the analyzed receiver attachment node (default:
	// Net.VictimOut). Tree-shaped nets analyze one sink per case.
	Sink string
	// ExtraLoads adds grounded capacitance at arbitrary net nodes —
	// typically the input capacitance of receivers at the *other* sinks
	// of a tree, which load the net but are not the analyzed endpoint.
	ExtraLoads map[string]float64
}

// Validate checks structural consistency.
func (c *Case) Validate() error {
	switch {
	case c.Net == nil:
		return noiseerr.Invalidf("delaynoise: nil net")
	case c.Victim.Cell == nil:
		return noiseerr.Invalidf("delaynoise: nil victim cell")
	case c.Receiver == nil:
		return noiseerr.Invalidf("delaynoise: nil receiver cell")
	case len(c.Aggressors) != len(c.Net.AggIn):
		return noiseerr.Invalidf("delaynoise: %d aggressor drivers for %d aggressor nets",
			len(c.Aggressors), len(c.Net.AggIn))
	case c.Victim.InputSlew <= 0:
		return noiseerr.Invalidf("delaynoise: victim input slew must be positive")
	case c.ReceiverLoad < 0:
		return noiseerr.Invalidf("delaynoise: negative receiver load")
	}
	for node, load := range c.ExtraLoads {
		if load < 0 {
			return noiseerr.Invalidf("delaynoise: negative extra load at %q", node)
		}
	}
	for i, a := range c.Aggressors {
		if a.Cell == nil {
			return noiseerr.Invalidf("delaynoise: aggressor %d has no cell", i)
		}
		if a.InputSlew <= 0 {
			return noiseerr.Invalidf("delaynoise: aggressor %d input slew must be positive", i)
		}
	}
	return nil
}

func (c *Case) aggLoad() float64 {
	if c.AggLoad > 0 {
		return c.AggLoad
	}
	return 5e-15
}

// vdd returns the supply voltage of the case's technology.
func (c *Case) vdd() float64 { return c.Victim.Cell.Tech.Vdd }

// sink returns the analyzed receiver attachment node.
func (c *Case) sink() string {
	if c.Sink != "" {
		return c.Sink
	}
	return c.Net.VictimOut
}

// loadedInterconnect clones the interconnect and adds the gate input
// capacitances at the victim receiver and aggressor far ends, so the
// linear superposition flow and the nonlinear reference see the same
// loading (the paper models receivers as grounded capacitors in the
// linear flow).
func (c *Case) loadedInterconnect() *netlist.Circuit {
	ckt := c.Net.Circuit.Clone()
	if cin := c.Receiver.InputCap(); cin > 0 {
		ckt.AddC("__recvin", c.sink(), netlist.Ground, cin)
	}
	for i, out := range c.Net.AggOut {
		ckt.AddC(fmt.Sprintf("__aggload%d", i), out, netlist.Ground, c.aggLoad())
	}
	for node, load := range c.ExtraLoads {
		if load > 0 {
			ckt.AddC("__extra_"+node, node, netlist.Ground, load)
		}
	}
	return ckt
}
