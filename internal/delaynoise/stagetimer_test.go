package delaynoise

import (
	"testing"

	"repro/internal/metrics"
	"repro/internal/noiseerr"
)

// TestStageTimersMatchSharedConstants runs a full analysis with
// instrumentation and asserts that every timer the engine registers in
// the "stage.*" namespace maps back to one of the shared noiseerr stage
// constants. This is the runtime half of the noiselint/stagename
// invariant: if a stage timer is added or renamed without touching the
// shared set in internal/noiseerr, this test fails before the analyzer
// ever runs.
func TestStageTimersMatchSharedConstants(t *testing.T) {
	c := testCase(t)
	reg := metrics.NewRegistry()
	_, err := Analyze(c, Options{
		Hold:       HoldTransient,
		Align:      AlignExhaustive,
		PRIMAOrder: 8, // exercise the reduce stage too
		Metrics:    reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	var stageTimers []string
	for name := range snap.Timers {
		if _, ok := noiseerr.StageForTimer(name); ok {
			stageTimers = append(stageTimers, name)
			continue
		}
		if len(name) >= 6 && name[:6] == "stage." {
			t.Errorf("timer %q is in the stage.* namespace but maps to no noiseerr stage constant", name)
		}
	}
	if len(stageTimers) == 0 {
		t.Fatal("analysis registered no stage.* timers; instrumentation wiring is broken")
	}
	// The core stages of this configuration must all have been timed.
	for _, s := range []noiseerr.Stage{
		noiseerr.StageCharacterize,
		noiseerr.StageReduce,
		noiseerr.StageSimulate,
		noiseerr.StageAlign,
		noiseerr.StageHoldres,
	} {
		if _, ok := snap.Timers[s.TimerName()]; !ok {
			t.Errorf("stage %q was never timed (missing timer %q)", s, s.TimerName())
		}
	}
}
