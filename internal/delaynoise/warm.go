package delaynoise

// Warm-start persistence for the shared caches: Snapshot exports a
// cache's completed entries as plain exported structs (JSON-friendly,
// float64 round-trips bit-exactly), Seed installs them into a fresh
// cache. Keys are re-stated in exported form rather than re-derived, so
// a seeded cache hits exactly where the populating run's cache did.
// Seeding never clobbers entries computed in this process (memo.Seed
// semantics), and a snapshot taken mid-run simply omits in-flight work.

import (
	"repro/internal/ceff"
	"repro/internal/holdres"
	"repro/internal/linalg"
	"repro/internal/mna"
	"repro/internal/mor"
	"repro/internal/thevenin"
)

// RoughEntry is one persisted rough Thevenin fit (bucket-keyed).
type RoughEntry struct {
	Cell       string
	Rising     bool
	SlewBucket int
	LumpBucket int
	Model      thevenin.Model
}

// FullEntry is one persisted C-effective characterization (exact-keyed).
type FullEntry struct {
	Cell    string
	Rising  bool
	Slew    uint64 // exact float bits
	Node    string
	Circuit uint64 // circuit content hash
	Result  ceff.Result
}

// HoldEntry is one persisted transient holding resistance (exact-keyed).
type HoldEntry struct {
	Cell   string
	Rising bool
	Slew   uint64 // exact float bits
	Ceff   uint64
	Rth    uint64
	Noise  uint64 // injected-noise waveform hash
	Result *holdres.Result
}

// CharSnapshot is the persistable content of a CharCache. BucketRes
// pins the geometric bucket resolution the rough keys were computed
// under: seeding into a cache with a different resolution would place
// entries in the wrong buckets, so Seed refuses it.
type CharSnapshot struct {
	BucketRes float64
	Rough     []RoughEntry
	Full      []FullEntry
	Hold      []HoldEntry
}

// Snapshot exports the cache's completed entries. Nil receiver (cache
// disabled) yields nil.
func (cc *CharCache) Snapshot() *CharSnapshot {
	if cc == nil {
		return nil
	}
	snap := &CharSnapshot{BucketRes: cc.res}
	for k, v := range cc.rough.Snapshot() {
		snap.Rough = append(snap.Rough, RoughEntry{
			Cell: k.cell, Rising: k.rising, SlewBucket: k.slewB, LumpBucket: k.lumpB, Model: v,
		})
	}
	for k, v := range cc.full.Snapshot() {
		snap.Full = append(snap.Full, FullEntry{
			Cell: k.cell, Rising: k.rising, Slew: k.slew, Node: k.node, Circuit: k.ckt, Result: v,
		})
	}
	for k, v := range cc.hold.Snapshot() {
		snap.Hold = append(snap.Hold, HoldEntry{
			Cell: k.cell, Rising: k.rising, Slew: k.slew, Ceff: k.ceff, Rth: k.rth, Noise: k.noise, Result: v,
		})
	}
	return snap
}

// Seed installs a snapshot's entries. Entries whose keys are already
// resident lose to the resident value. A snapshot taken under a
// different bucket resolution is ignored entirely (its rough buckets
// don't line up), reported via the return value.
func (cc *CharCache) Seed(snap *CharSnapshot) (ok bool) {
	if cc == nil || snap == nil {
		return false
	}
	if snap.BucketRes != cc.res {
		return false
	}
	for _, e := range snap.Rough {
		cc.rough.Seed(roughKey{e.Cell, e.Rising, e.SlewBucket, e.LumpBucket}, e.Model)
	}
	for _, e := range snap.Full {
		cc.full.Seed(fullKey{e.Cell, e.Rising, e.Slew, e.Node, e.Circuit}, e.Result)
	}
	for _, e := range snap.Hold {
		cc.hold.Seed(holdKey{e.Cell, e.Rising, e.Slew, e.Ceff, e.Rth, e.Noise}, e.Result)
	}
	return true
}

// Res reports the cache's relative bucket resolution (0 for a nil,
// disabled cache). It participates in warm-store identity: snapshots
// only seed into caches with the same resolution.
func (cc *CharCache) Res() float64 {
	if cc == nil {
		return 0
	}
	return cc.res
}

// Len reports the resident entry count across the cache's three maps.
func (cc *CharCache) Len() int {
	if cc == nil {
		return 0
	}
	return cc.rough.Len() + cc.full.Len() + cc.hold.Len()
}

// ROMEntry is one persisted PRIMA reduction. The reduced system, basis,
// and full system are stored whole; the full system may be omitted (nil)
// when it aliases the reduced one (identity projection).
type ROMEntry struct {
	System  uint64 // MNA content hash (the cache key)
	Q       int    // requested order (the cache key)
	Reduced *mna.System
	V       *linalg.Matrix
	Full    *mna.System
	Order   int
}

// Snapshot exports the cache's completed reductions.
func (rc *ROMCache) Snapshot() []ROMEntry {
	if rc == nil {
		return nil
	}
	var out []ROMEntry
	for k, rom := range rc.roms.Snapshot() {
		e := ROMEntry{System: k.sys, Q: k.q, Reduced: rom.Reduced, V: rom.V, Order: rom.Order}
		if full := rom.Full(); full != rom.Reduced {
			e.Full = full
		}
		out = append(out, e)
	}
	return out
}

// Seed installs persisted reductions, skipping entries that fail to
// restore (a malformed store entry costs a warm hit, not the run).
func (rc *ROMCache) Seed(entries []ROMEntry) {
	if rc == nil {
		return
	}
	for _, e := range entries {
		rom, err := mor.Restore(e.Reduced, e.V, e.Full, e.Order)
		if err != nil {
			continue
		}
		rc.roms.Seed(romKey{e.System, e.Q}, rom)
	}
}

// Len reports the resident reduction count.
func (rc *ROMCache) Len() int {
	if rc == nil {
		return 0
	}
	return rc.roms.Len()
}
