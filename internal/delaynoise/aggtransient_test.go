package delaynoise

import (
	"math"
	"testing"
)

func TestAggressorTransientExtension(t *testing.T) {
	c := testCase(t)
	plain, err := Analyze(c, Options{Hold: HoldTransient, Align: AlignExhaustive})
	if err != nil {
		t.Fatal(err)
	}
	ext, err := Analyze(c, Options{
		Hold: HoldTransient, Align: AlignExhaustive, AggressorTransient: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The extension changes only the noiseless victim waveform through
	// the aggressor holding model; the result must stay close (the paper
	// notes the aggressor-side effect is indirect) but the analysis must
	// run and produce a sane result.
	if ext.DelayNoise <= 0 {
		t.Fatalf("extension delay noise %v", ext.DelayNoise)
	}
	if rel := math.Abs(ext.DelayNoise-plain.DelayNoise) / plain.DelayNoise; rel > 0.5 {
		t.Fatalf("extension moved delay noise by %.0f%% (%v vs %v), expected an indirect effect",
			rel*100, ext.DelayNoise, plain.DelayNoise)
	}
	// The noiseless quiet delays should differ at most slightly.
	if rel := math.Abs(ext.QuietCombinedDelay-plain.QuietCombinedDelay) / plain.QuietCombinedDelay; rel > 0.25 {
		t.Fatalf("quiet delay moved by %.0f%%", rel*100)
	}
}
