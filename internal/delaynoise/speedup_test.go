package delaynoise

import (
	"math"
	"testing"
)

// speedupCase is the testCase with the aggressor switching the SAME
// direction as the victim, so its pulse accelerates the transition.
func speedupCase(t testing.TB) *Case {
	c := testCase(t)
	c.Aggressors[0].OutputRising = c.Victim.OutputRising
	return c
}

func TestSpeedupNoiseNegative(t *testing.T) {
	c := speedupCase(t)
	res, err := Analyze(c, Options{
		Hold: HoldThevenin, Align: AlignExhaustive, Minimize: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.DelayNoise >= 0 {
		t.Fatalf("speed-up delay noise %v must be negative", res.DelayNoise)
	}
	// The helping pulse has the victim's polarity.
	if res.Pulse.Height <= 0 {
		t.Fatalf("helping pulse height %v should be positive on a rising victim", res.Pulse.Height)
	}
	// Golden validation at the same alignment.
	golden, err := GoldenAtShifts(c, PeakShifts(res.NoisePeakTimes, res.TPeak))
	if err != nil {
		t.Fatal(err)
	}
	if golden.DelayNoise >= 0 {
		t.Fatalf("golden speed-up %v must be negative", golden.DelayNoise)
	}
}

func TestSpeedupBaselineNotBetterThanExhaustive(t *testing.T) {
	c := speedupCase(t)
	exh, err := Analyze(c, Options{Hold: HoldThevenin, Align: AlignExhaustive, Minimize: true})
	if err != nil {
		t.Fatal(err)
	}
	base, err := Analyze(c, Options{Hold: HoldThevenin, Align: AlignReceiverInput, Minimize: true})
	if err != nil {
		t.Fatal(err)
	}
	// Exhaustive minimization must find at least as much speed-up.
	if base.DelayNoise < exh.DelayNoise-1e-13 {
		t.Fatalf("baseline speed-up (%v) beat exhaustive (%v)", base.DelayNoise, exh.DelayNoise)
	}
}

func TestSpeedupMagnitudeComparableToSlowdown(t *testing.T) {
	slow, err := Analyze(testCase(t), Options{Hold: HoldThevenin, Align: AlignExhaustive})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := Analyze(speedupCase(t), Options{Hold: HoldThevenin, Align: AlignExhaustive, Minimize: true})
	if err != nil {
		t.Fatal(err)
	}
	ratio := math.Abs(fast.DelayNoise) / slow.DelayNoise
	if ratio < 0.2 || ratio > 3 {
		t.Fatalf("speed-up/slow-down ratio %v implausible (%v vs %v)",
			ratio, fast.DelayNoise, slow.DelayNoise)
	}
}

func TestPrecharRejectsMinimize(t *testing.T) {
	c := speedupCase(t)
	if _, err := Analyze(c, Options{Align: AlignPrechar, Minimize: true}); err == nil {
		t.Fatal("expected error for prechar + minimize")
	}
}
