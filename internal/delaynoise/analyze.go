package delaynoise

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro/internal/align"
	"repro/internal/gatesim"
	"repro/internal/metrics"
	"repro/internal/noiseerr"
	"repro/internal/waveform"
)

// HoldModel selects the resistance that holds the shorted victim driver
// during aggressor superposition simulations.
type HoldModel int

const (
	// HoldThevenin is the traditional model: the aggregate transition
	// resistance Rth (the paper's 48%-error baseline).
	HoldThevenin HoldModel = iota
	// HoldTransient is the paper's contribution: the transient holding
	// resistance Rtr matched to the nonlinear noise response.
	HoldTransient
)

// String names the holding model for reports.
func (h HoldModel) String() string {
	if h == HoldThevenin {
		return "thevenin"
	}
	return "transient"
}

// AlignMethod selects how the composite pulse is aligned against the
// victim transition.
type AlignMethod int

const (
	// AlignExhaustive searches the alignment space with nonlinear
	// receiver simulations (the expensive golden approach).
	AlignExhaustive AlignMethod = iota
	// AlignReceiverInput is the refs [5][6] baseline: maximize the
	// interconnect delay at the receiver *input* (peak at Vdd/2 + Vp).
	AlignReceiverInput
	// AlignPrechar uses the paper's 8-point pre-characterization table
	// (Options.Table must be set).
	AlignPrechar
)

// String names the alignment method for reports.
func (a AlignMethod) String() string {
	switch a {
	case AlignExhaustive:
		return "exhaustive"
	case AlignReceiverInput:
		return "receiver-input"
	default:
		return "prechar"
	}
}

// Window optionally constrains the pulse-peak time (switching-window
// constraint from timing analysis, refs [8][9]).
type Window struct {
	Lo, Hi float64
}

// Options configure an analysis.
type Options struct {
	Hold  HoldModel
	Align AlignMethod
	Table *align.Table // required for AlignPrechar

	// MaxIterations bounds the linear-model / alignment fixpoint loop
	// (default 3; the paper reports 1-2 suffice).
	MaxIterations int
	// RtrTol is the relative Rtr convergence tolerance (default 5%).
	RtrTol float64
	// Step is the linear-simulation time step (default 1 ps).
	Step float64
	// PRIMAOrder, when positive, reduces the interconnect with PRIMA to
	// the given order before the linear runs.
	PRIMAOrder int
	// SearchGrid is the exhaustive-alignment grid (default 21).
	SearchGrid int
	// Window constrains the pulse peak time when non-nil.
	Window *Window
	// AggressorTransient extends the transient-holding-resistance idea
	// to the shorted aggressor drivers in the victim-switching simulation
	// (the optional extension the paper sketches in Section 1).
	AggressorTransient bool
	// Minimize flips the alignment objective to the speed-up analysis:
	// the aligned pulse minimizes the combined delay (for aggressors
	// switching in the victim's direction), bounding the early edge of
	// downstream timing windows. DelayNoise then comes out negative.
	// Only AlignExhaustive and AlignReceiverInput support it.
	Minimize bool

	// Chars, when non-nil, shares driver characterizations (rough
	// Thevenin fits, C-effective iterations, transient holding
	// resistances) across analyses with single-flight semantics. Batch
	// engines set this; single-net callers can leave it nil.
	Chars *CharCache
	// ROMs, when non-nil, shares PRIMA reduced-order models across
	// analyses, keyed by a content hash of the assembled linear system.
	// Only consulted when PRIMAOrder is positive.
	ROMs *ROMCache
	// Metrics, when non-nil, receives engine instrumentation: linear and
	// nonlinear simulation counts, per-stage wall time, and cache
	// hit/miss counters.
	Metrics *metrics.Registry
}

func (o *Options) defaults() {
	if o.MaxIterations == 0 {
		o.MaxIterations = 3
	}
	if o.RtrTol == 0 {
		o.RtrTol = 0.05
	}
	if o.Step == 0 {
		o.Step = 1e-12
	}
	if o.SearchGrid == 0 {
		o.SearchGrid = 21
	}
}

// Result is the outcome of one per-net analysis.
type Result struct {
	// Driver models.
	VictimCeff float64
	VictimRth  float64
	VictimRtr  float64 // equals VictimRth under HoldThevenin

	// Linear waveforms at the receiver input.
	NoiselessRecvIn *waveform.PWL
	NoisePulses     []*waveform.PWL // per aggressor, at nominal timing
	NoisePeakTimes  []float64       // nominal peak time of each pulse
	Composite       *waveform.PWL   // peak-aligned composite (peak at t=0)
	Pulse           align.Pulse     // measured composite height/width

	// Alignment.
	TPeak float64 // chosen composite peak time (absolute)

	// Nonlinear receiver outputs from the final report stage — the
	// alignment-objective waveforms themselves, retained so path-level
	// analysis can feed a stage's noisy output to the next stage's
	// input without re-simulating. NoisyRecvIn is the superposed input
	// (noiseless + composite shifted to TPeak) that produced
	// NoisyRecvOut.
	QuietRecvOut *waveform.PWL
	NoisyRecvOut *waveform.PWL
	NoisyRecvIn  *waveform.PWL
	// OutputRising is the receiver output transition direction.
	OutputRising bool
	// Absolute crossing times backing the delay figures below:
	// VictimDrv50 is the victim driver output 50% crossing,
	// Quiet/NoisyOutCross the final receiver output 50% crossings.
	VictimDrv50   float64
	QuietOutCross float64
	NoisyOutCross float64

	// Delays (combined = victim driver output 50% to receiver output 50%).
	QuietCombinedDelay float64
	NoisyCombinedDelay float64
	DelayNoise         float64 // NoisyCombinedDelay - QuietCombinedDelay
	// InterconnectDelayNoise is the receiver-input (50%) delay shift, the
	// objective the paper argues is insufficient.
	InterconnectDelayNoise float64

	Iterations int
}

// Analyze runs the full linear-model + alignment flow on one case.
func Analyze(c *Case, opt Options) (*Result, error) {
	return AnalyzeContext(context.Background(), c, opt)
}

// AnalyzeContext is Analyze with cancellation/deadline support: the
// context is threaded through every characterization, linear and
// nonlinear simulation, and alignment search, so a canceled analysis
// aborts mid-simulation within a bounded number of solver steps. Errors
// classify under internal/noiseerr (errors.Is against the sentinel
// classes) and carry the failing pipeline stage in a
// noiseerr.StageError.
func AnalyzeContext(ctx context.Context, c *Case, opt Options) (*Result, error) {
	opt.defaults()
	charStart := time.Now()
	e, err := newEngine(ctx, c, opt)
	if err != nil {
		return nil, noiseerr.InStage(noiseerr.StageCharacterize, err)
	}
	opt.Metrics.Observe(noiseerr.StageCharacterize.TimerName(), time.Since(charStart))
	noiselessIn, noiselessDrv, err := e.victimNoiseless()
	if err != nil {
		return nil, noiseerr.InStage(noiseerr.StageSimulate, err)
	}
	res := &Result{
		VictimCeff: e.victim.ceff,
		VictimRth:  e.victim.model.Rth,
		VictimRtr:  e.victim.model.Rth,
	}
	res.NoiselessRecvIn = noiselessIn

	obj := align.Objective{
		Receiver:     c.Receiver,
		Load:         c.ReceiverLoad,
		VictimRising: c.Victim.OutputRising,
		Sims:         opt.Metrics.Counter(mSimNonlinearReceiver),
		Ctx:          ctx,
	}

	rHold := e.victim.model.Rth
	var composite *waveform.PWL
	var tPeak float64
	var recvNoises, drvNoises []*waveform.PWL
	for iter := 1; iter <= opt.MaxIterations; iter++ {
		res.Iterations = iter
		recvNoises = recvNoises[:0]
		drvNoises = drvNoises[:0]
		for k := range e.aggs {
			rn, dn, err := e.aggressorNoise(k, rHold)
			if err != nil {
				return nil, noiseerr.InStage(noiseerr.StageSimulate, err)
			}
			recvNoises = append(recvNoises, rn)
			drvNoises = append(drvNoises, dn)
		}
		composite, err = align.Composite(recvNoises...)
		if err != nil {
			return nil, noiseerr.InStage(noiseerr.StageAlign, fmt.Errorf("delaynoise: composite: %w", err))
		}
		pulse, err := align.Params(composite)
		if err != nil {
			return nil, noiseerr.InStage(noiseerr.StageAlign, fmt.Errorf("delaynoise: composite params: %w", err))
		}
		res.Pulse = pulse

		alignStart := time.Now()
		tPeak, err = e.chooseAlignment(obj, noiselessIn, composite, pulse, opt)
		opt.Metrics.Observe(noiseerr.StageAlign.TimerName(), time.Since(alignStart))
		if err != nil {
			return nil, noiseerr.InStage(noiseerr.StageAlign, err)
		}
		if opt.Window != nil {
			tPeak = math.Max(opt.Window.Lo, math.Min(opt.Window.Hi, tPeak))
		}

		if opt.Hold == HoldThevenin {
			break
		}
		// Transient holding resistance: build the total noise at the
		// victim driver output with every aggressor shifted so its
		// receiver-input peak lands on tPeak, then recompute Rtr. The
		// noise is translated into the characterization time frame (the
		// holdres driver simulation starts its input at
		// gatesim.InputStart, not at the case's victim input start).
		vn := alignedDriverNoise(recvNoises, drvNoises, tPeak)
		vn = vn.Shift(gatesim.InputStart - c.Victim.InputStart)
		holdStart := time.Now()
		hr, err := opt.Chars.HoldRes(ctx, c.Victim.Cell, c.Victim.InputSlew, c.Victim.Cell.InputRisingFor(c.Victim.OutputRising),
			e.victim.ceff, e.victim.model.Rth, vn)
		opt.Metrics.Observe(noiseerr.StageHoldres.TimerName(), time.Since(holdStart))
		if err != nil {
			return nil, noiseerr.InStage(noiseerr.StageHoldres, fmt.Errorf("delaynoise: holding resistance: %w", err))
		}
		res.VictimRtr = hr.Rtr
		// The loop must run at least twice so the computed Rtr is
		// actually used for the reported noise (iteration 1 always uses
		// Rth); it stops once Rtr is stable.
		if iter > 1 && math.Abs(hr.Rtr-rHold) <= opt.RtrTol*rHold {
			break
		}
		rHold = hr.Rtr
	}
	res.NoisePulses = recvNoises
	res.NoisePeakTimes = make([]float64, len(recvNoises))
	for k, rn := range recvNoises {
		res.NoisePeakTimes[k], _ = rn.Peak()
	}
	res.Composite = composite
	res.TPeak = tPeak

	// Final delay evaluation with nonlinear receiver simulations. The
	// output waveforms are retained on the result (not just their
	// crossings): stage k's NoisyRecvOut is exactly what path-level
	// analysis hands to stage k+1.
	reportStart := time.Now()
	defer func() { opt.Metrics.Observe(noiseerr.StageReport.TimerName(), time.Since(reportStart)) }()
	noisyIn := align.NoisyInput(noiselessIn, composite, tPeak)
	quietOutW, err := obj.Output(noiselessIn)
	if err != nil {
		return nil, noiseerr.InStage(noiseerr.StageReport, fmt.Errorf("delaynoise: noiseless receiver: %w", err))
	}
	quietOut, err := obj.Cross(quietOutW)
	if err != nil {
		return nil, noiseerr.InStage(noiseerr.StageReport, fmt.Errorf("delaynoise: noiseless receiver: %w", err))
	}
	noisyOutW, err := obj.Output(noisyIn)
	if err != nil {
		return nil, noiseerr.InStage(noiseerr.StageReport, fmt.Errorf("delaynoise: noisy receiver: %w", err))
	}
	noisyOut, err := obj.Cross(noisyOutW)
	if err != nil {
		return nil, noiseerr.InStage(noiseerr.StageReport, fmt.Errorf("delaynoise: noisy receiver: %w", err))
	}
	drv50, err := cross50(noiselessDrv, c.vdd(), c.Victim.OutputRising)
	if err != nil {
		return nil, noiseerr.InStage(noiseerr.StageReport, noiseerr.Numericalf("delaynoise: victim driver output: %w", err))
	}
	res.QuietRecvOut = quietOutW
	res.NoisyRecvOut = noisyOutW
	res.NoisyRecvIn = noisyIn
	res.OutputRising = obj.OutputRising()
	res.VictimDrv50 = drv50
	res.QuietOutCross = quietOut
	res.NoisyOutCross = noisyOut
	res.QuietCombinedDelay = quietOut - drv50
	res.NoisyCombinedDelay = noisyOut - drv50
	res.DelayNoise = noisyOut - quietOut
	quietIn, err := obj.InputCross(noiselessIn)
	if err == nil {
		if noisyInCross, err2 := obj.InputCross(noisyIn); err2 == nil {
			res.InterconnectDelayNoise = noisyInCross - quietIn
		}
	}
	return res, nil
}

// AnalyzeQuiet runs only the quiet half of the flow: driver
// characterization, the noiseless victim simulation (aggressor drivers
// held), and one nonlinear receiver simulation. No aggressor noise
// pulses are simulated and no alignment search runs, so it costs a
// small fraction of AnalyzeContext. Path-level analysis uses it for the
// noiseless reference chain; the populated fields are the driver
// models, NoiselessRecvIn, QuietRecvOut, and the quiet delay figures.
func AnalyzeQuiet(c *Case, opt Options) (*Result, error) {
	return AnalyzeQuietContext(context.Background(), c, opt)
}

// AnalyzeQuietContext is AnalyzeQuiet with cancellation support.
func AnalyzeQuietContext(ctx context.Context, c *Case, opt Options) (*Result, error) {
	opt.defaults()
	charStart := time.Now()
	e, err := newEngine(ctx, c, opt)
	if err != nil {
		return nil, noiseerr.InStage(noiseerr.StageCharacterize, err)
	}
	opt.Metrics.Observe(noiseerr.StageCharacterize.TimerName(), time.Since(charStart))
	noiselessIn, noiselessDrv, err := e.victimNoiseless()
	if err != nil {
		return nil, noiseerr.InStage(noiseerr.StageSimulate, err)
	}
	res := &Result{
		VictimCeff:      e.victim.ceff,
		VictimRth:       e.victim.model.Rth,
		VictimRtr:       e.victim.model.Rth,
		NoiselessRecvIn: noiselessIn,
		Iterations:      1,
	}
	obj := align.Objective{
		Receiver:     c.Receiver,
		Load:         c.ReceiverLoad,
		VictimRising: c.Victim.OutputRising,
		Sims:         opt.Metrics.Counter(mSimNonlinearReceiver),
		Ctx:          ctx,
	}
	reportStart := time.Now()
	defer func() { opt.Metrics.Observe(noiseerr.StageReport.TimerName(), time.Since(reportStart)) }()
	quietOutW, err := obj.Output(noiselessIn)
	if err != nil {
		return nil, noiseerr.InStage(noiseerr.StageReport, fmt.Errorf("delaynoise: noiseless receiver: %w", err))
	}
	quietOut, err := obj.Cross(quietOutW)
	if err != nil {
		return nil, noiseerr.InStage(noiseerr.StageReport, fmt.Errorf("delaynoise: noiseless receiver: %w", err))
	}
	drv50, err := cross50(noiselessDrv, c.vdd(), c.Victim.OutputRising)
	if err != nil {
		return nil, noiseerr.InStage(noiseerr.StageReport, noiseerr.Numericalf("delaynoise: victim driver output: %w", err))
	}
	res.QuietRecvOut = quietOutW
	res.OutputRising = obj.OutputRising()
	res.VictimDrv50 = drv50
	res.QuietOutCross = quietOut
	res.QuietCombinedDelay = quietOut - drv50
	return res, nil
}

// chooseAlignment dispatches on the alignment method.
func (e *engine) chooseAlignment(obj align.Objective, noiseless, composite *waveform.PWL, pulse align.Pulse, opt Options) (float64, error) {
	switch opt.Align {
	case AlignExhaustive:
		var w align.WorstResult
		var err error
		if opt.Minimize {
			w, err = obj.ExhaustiveBest(noiseless, composite, opt.SearchGrid)
		} else {
			w, err = obj.ExhaustiveWorst(noiseless, composite, opt.SearchGrid)
		}
		if err != nil {
			return 0, fmt.Errorf("delaynoise: exhaustive alignment: %w", err)
		}
		return w.TPeak, nil
	case AlignReceiverInput:
		var tp float64
		var err error
		if opt.Minimize {
			tp, err = align.ReceiverInputSpeedup(noiseless, pulse.Height, e.c.vdd(), e.c.Victim.OutputRising)
		} else {
			tp, err = align.ReceiverInputAlignment(noiseless, pulse.Height, e.c.vdd(), e.c.Victim.OutputRising)
		}
		if err != nil {
			return 0, fmt.Errorf("delaynoise: receiver-input alignment: %w", err)
		}
		return tp, nil
	case AlignPrechar:
		if opt.Minimize {
			return 0, noiseerr.Invalidf("delaynoise: AlignPrechar does not support Minimize")
		}
		if opt.Table == nil {
			return 0, noiseerr.Invalidf("delaynoise: AlignPrechar requires Options.Table")
		}
		er, err := align.EdgeRate(noiseless, e.c.vdd(), e.c.Victim.OutputRising)
		if err != nil {
			return 0, err
		}
		tp, err := opt.Table.PredictPeakTime(noiseless, er, pulse.Width, math.Abs(pulse.Height), e.c.ReceiverLoad)
		if err != nil {
			return 0, fmt.Errorf("delaynoise: prechar alignment: %w", err)
		}
		return tp, nil
	default:
		return 0, noiseerr.Invalidf("delaynoise: unknown alignment method %d", opt.Align)
	}
}

// alignedDriverNoise sums the victim-driver-output noise contributions
// with each aggressor shifted so its receiver-input noise peak occurs at
// tPeak.
func alignedDriverNoise(recvNoises, drvNoises []*waveform.PWL, tPeak float64) *waveform.PWL {
	shifted := make([]*waveform.PWL, len(drvNoises))
	for k := range drvNoises {
		pt, _ := recvNoises[k].Peak()
		shifted[k] = drvNoises[k].Shift(tPeak - pt)
	}
	return waveform.Sum(shifted...)
}

// cross50 returns the 50% crossing of a full-swing transition.
func cross50(w *waveform.PWL, vdd float64, rising bool) (float64, error) {
	if rising {
		return w.CrossRising(vdd / 2)
	}
	return w.CrossFalling(vdd / 2)
}
