package delaynoise

import (
	"context"
	"math"

	"repro/internal/ceff"
	"repro/internal/device"
	"repro/internal/holdres"
	"repro/internal/memo"
	"repro/internal/metrics"
	"repro/internal/mna"
	"repro/internal/mor"
	"repro/internal/netlist"
	"repro/internal/thevenin"
	"repro/internal/waveform"
)

// The shared caches below let a batch engine (internal/clarinet) fan the
// per-net flow across cores without repeating work: nets that share a
// driver cell at a similar operating point reuse the rough Thevenin fit,
// duplicated net structures (bus bits, clock spines) reuse the full
// C-effective characterization, the transient-holding-resistance
// derivation, and the PRIMA reduction. All caches are single-flight
// (internal/memo): concurrent nets needing the same entry compute it
// once. Every method tolerates a nil receiver and simply computes
// uncached, so the engine code calls them unconditionally.
//
// Each method takes the calling net's context: under single flight the
// in-flight computation runs on the first caller's context, and a
// cancellation there surfaces to every waiter. Failed computations are
// never cached (memo drops them), so a canceled entry does not poison
// the cache — the next caller simply recomputes it.

// DefaultCharBucketRes is the relative width of the geometric slew/load
// buckets of CharCache's rough-fit cache.
const DefaultCharBucketRes = 0.05

type roughKey struct {
	cell   string
	rising bool
	slewB  int
	lumpB  int
}

type fullKey struct {
	cell   string
	rising bool
	slew   uint64 // exact float bits
	node   string
	ckt    uint64 // circuit content hash
}

type holdKey struct {
	cell            string
	rising          bool
	slew, ceff, rth uint64
	noise           uint64 // hash of the injected noise waveform
}

// CharCache memoizes driver characterizations across analyses.
//
// Rough Thevenin fits are keyed by (cell, slew bucket, load bucket) and
// evaluated at the bucket-canonical operating point, so nearby operating
// points share one fit deterministically (the result never depends on
// which net populated the bucket first). The bucketing perturbs only the
// holding resistances used for pass-2 characterization, by at most the
// bucket resolution. Full C-effective characterizations and transient
// holding resistances are keyed exactly (including a content hash of the
// held circuit or noise waveform), so cache hits are bit-identical to
// uncached runs and occur for repeated net structures.
//
// A CharCache must not be shared across cell libraries or technologies:
// keys identify cells by name.
type CharCache struct {
	res     float64
	metrics *metrics.Registry
	rough   *memo.Cache[roughKey, thevenin.Model]
	full    *memo.Cache[fullKey, ceff.Result]
	hold    *memo.Cache[holdKey, *holdres.Result]
}

// NewCharCache builds a characterization cache with the given relative
// bucket resolution (<= 0 selects DefaultCharBucketRes). The registry,
// which may be nil, receives cache.char.* hit/miss counters.
func NewCharCache(res float64, m *metrics.Registry) *CharCache {
	if res <= 0 {
		res = DefaultCharBucketRes
	}
	return &CharCache{
		res:     res,
		metrics: m,
		rough:   memo.New[roughKey, thevenin.Model](),
		full:    memo.New[fullKey, ceff.Result](),
		hold:    memo.New[holdKey, *holdres.Result](),
	}
}

// bucket maps a positive quantity onto a geometric grid and returns the
// bucket index together with the bucket-canonical value.
func (cc *CharCache) bucket(v float64) (int, float64) {
	if v <= 0 {
		return 0, v
	}
	step := math.Log1p(cc.res)
	b := int(math.Round(math.Log(v) / step))
	return b, math.Exp(float64(b) * step)
}

func (cc *CharCache) count(base string, hit bool) {
	if cc == nil {
		return
	}
	if hit {
		cc.metrics.Counter(base + mHitSuffix).Inc()
	} else {
		cc.metrics.Counter(base + mMissSuffix).Inc()
	}
}

// RoughFit returns the lumped-load Thevenin model of a driver, evaluated
// at the bucket-canonical (slew, load) point and shared across nets.
func (cc *CharCache) RoughFit(ctx context.Context, cell *device.Cell, slew float64, inRising bool, lump float64) (thevenin.Model, error) {
	if cc == nil {
		m, _, err := thevenin.FitContext(ctx, cell, slew, inRising, lump)
		return m, err
	}
	sb, sq := cc.bucket(slew)
	lb, lq := cc.bucket(lump)
	m, hit, err := cc.rough.Do(roughKey{cell.Name, inRising, sb, lb}, func() (thevenin.Model, error) {
		m, _, err := thevenin.FitContext(ctx, cell, sq, inRising, lq)
		return m, err
	})
	cc.count(mCacheCharRough, hit)
	return m, err
}

// Characterize returns the C-effective characterization of a driver
// against the held interconnect. Keys are exact (slew bits plus a
// content hash of the circuit), so a hit reproduces the uncached result
// and occurs only for duplicated net structures.
func (cc *CharCache) Characterize(ctx context.Context, cell *device.Cell, slew float64, inRising bool, net *netlist.Circuit, node string) (ceff.Result, error) {
	if cc == nil {
		return ceff.ComputeContext(ctx, cell, slew, inRising, net, node, ceff.Options{})
	}
	key := fullKey{cell.Name, inRising, math.Float64bits(slew), node, hashCircuit(net)}
	res, hit, err := cc.full.Do(key, func() (ceff.Result, error) {
		return ceff.ComputeContext(ctx, cell, slew, inRising, net, node, ceff.Options{})
	})
	cc.count(mCacheCharFull, hit)
	return res, err
}

// HoldRes returns the transient holding resistance of a driver under the
// injected noise vn, keyed exactly (including the noise waveform).
func (cc *CharCache) HoldRes(ctx context.Context, cell *device.Cell, slew float64, inRising bool, cEff, rth float64, vn *waveform.PWL) (*holdres.Result, error) {
	if cc == nil {
		return holdres.ComputeContext(ctx, cell, slew, inRising, cEff, rth, vn)
	}
	key := holdKey{
		cell:   cell.Name,
		rising: inRising,
		slew:   math.Float64bits(slew),
		ceff:   math.Float64bits(cEff),
		rth:    math.Float64bits(rth),
		noise:  hashPWL(vn),
	}
	res, hit, err := cc.hold.Do(key, func() (*holdres.Result, error) {
		return holdres.ComputeContext(ctx, cell, slew, inRising, cEff, rth, vn)
	})
	cc.count(mCacheHoldres, hit)
	return res, err
}

type romKey struct {
	sys uint64
	q   int
}

// ROMCache memoizes PRIMA reduced-order models keyed by a content hash
// of the assembled MNA system (matrices and node names, excluding the
// source waveforms, which the reduction does not depend on). Cache hits
// rebind the cached projection to the caller's sources.
type ROMCache struct {
	metrics *metrics.Registry
	roms    *memo.Cache[romKey, *mor.ROM]
}

// NewROMCache builds a reduced-order-model cache. The registry, which
// may be nil, receives cache.rom hit/miss counters.
func NewROMCache(m *metrics.Registry) *ROMCache {
	return &ROMCache{metrics: m, roms: memo.New[romKey, *mor.ROM]()}
}

// Reduce returns a PRIMA reduction of sys to order q, sharing the Krylov
// projection across systems with identical matrices.
func (rc *ROMCache) Reduce(ctx context.Context, sys *mna.System, q int) (*mor.ROM, error) {
	if rc == nil {
		return mor.ReduceContext(ctx, sys, q)
	}
	rom, hit, err := rc.roms.Do(romKey{hashSystem(sys), q}, func() (*mor.ROM, error) {
		return mor.ReduceContext(ctx, sys, q)
	})
	if hit {
		rc.metrics.Counter(mCacheROMHit).Inc()
	} else {
		rc.metrics.Counter(mCacheROMMiss).Inc()
	}
	if err != nil {
		return nil, err
	}
	if !hit {
		return rom, nil
	}
	// The cached model carries the populating run's sources; rebind.
	return rom.WithInputs(sys.Inputs)
}

// --- content hashing (FNV-1a over exact bit patterns) ---

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnvByte(h uint64, b byte) uint64 {
	return (h ^ uint64(b)) * fnvPrime
}

func fnvU64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = fnvByte(h, byte(v>>(8*i)))
	}
	return h
}

func fnvString(h uint64, s string) uint64 {
	h = fnvU64(h, uint64(len(s)))
	for i := 0; i < len(s); i++ {
		h = fnvByte(h, s[i])
	}
	return h
}

func fnvFloat(h uint64, f float64) uint64 {
	return fnvU64(h, math.Float64bits(f))
}

// hashPWL hashes a waveform's exact breakpoints.
func hashPWL(w *waveform.PWL) uint64 {
	h := uint64(fnvOffset)
	if w == nil {
		return h
	}
	h = fnvU64(h, uint64(len(w.T)))
	for i := range w.T {
		h = fnvFloat(h, w.T[i])
		h = fnvFloat(h, w.V[i])
	}
	return h
}

// hashCircuit hashes every element of a circuit: names, terminals,
// values, and source waveforms. Two circuits built by the same
// deterministic construction path hash equally iff they are identical.
func hashCircuit(c *netlist.Circuit) uint64 {
	h := uint64(fnvOffset)
	h = fnvU64(h, uint64(len(c.Resistors)))
	for _, r := range c.Resistors {
		h = fnvString(h, r.Name)
		h = fnvString(h, r.A)
		h = fnvString(h, r.B)
		h = fnvFloat(h, r.R)
	}
	h = fnvU64(h, uint64(len(c.Capacitors)))
	for _, cap := range c.Capacitors {
		h = fnvString(h, cap.Name)
		h = fnvString(h, cap.A)
		h = fnvString(h, cap.B)
		h = fnvFloat(h, cap.C)
	}
	h = fnvU64(h, uint64(len(c.CurrentSources)))
	for _, s := range c.CurrentSources {
		h = fnvString(h, s.Name)
		h = fnvString(h, s.A)
		h = fnvU64(h, hashPWL(s.I))
	}
	h = fnvU64(h, uint64(len(c.Drivers)))
	for _, d := range c.Drivers {
		h = fnvString(h, d.Name)
		h = fnvString(h, d.A)
		h = fnvFloat(h, d.R)
		h = fnvU64(h, hashPWL(d.V))
	}
	return h
}

// hashSystem hashes an MNA system's matrices and state names, excluding
// the input waveforms.
func hashSystem(s *mna.System) uint64 {
	h := uint64(fnvOffset)
	h = fnvU64(h, uint64(len(s.Nodes)))
	for _, n := range s.Nodes {
		h = fnvString(h, n)
	}
	for _, data := range [][]float64{s.G.Data, s.C.Data, s.B.Data} {
		h = fnvU64(h, uint64(len(data)))
		for _, v := range data {
			h = fnvFloat(h, v)
		}
	}
	return h
}
