package clarinet

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"

	"repro/internal/delaynoise"
	"repro/internal/noiseerr"
	"repro/internal/resilience"
)

// JournalResult is the scalar subset of a delaynoise.Result that a
// journal preserves across a checkpoint/resume cycle: everything the
// reports and JSON output render, without the waveform payloads.
// encoding/json round-trips float64 exactly, so a resumed report
// renders byte-identically to the uninterrupted run.
type JournalResult struct {
	VictimCeff             float64 `json:"victimCeff"`
	VictimRth              float64 `json:"victimRth"`
	VictimRtr              float64 `json:"victimRtr"`
	PulseHeight            float64 `json:"pulseHeight"`
	PulseWidth             float64 `json:"pulseWidth"`
	TPeak                  float64 `json:"tPeak"`
	QuietCombinedDelay     float64 `json:"quietCombinedDelay"`
	NoisyCombinedDelay     float64 `json:"noisyCombinedDelay"`
	DelayNoise             float64 `json:"delayNoise"`
	InterconnectDelayNoise float64 `json:"interconnectDelayNoise"`
	Iterations             int     `json:"iterations"`
}

// JournalRecord is one JSONL line of a batch journal — and one NDJSON
// line of the noised streaming wire protocol: the outcome of one net,
// success or failure.
type JournalRecord struct {
	Net     string         `json:"net"`
	Quality string         `json:"quality,omitempty"`
	Class   string         `json:"class,omitempty"`
	Error   string         `json:"error,omitempty"`
	Result  *JournalResult `json:"result,omitempty"`
}

// ToRecord converts a completed report to its serialized journal/wire
// form. Cancellation-class reports return ok=false: a net aborted by a
// dying batch has no outcome worth replaying or transmitting.
func ToRecord(r NetReport) (JournalRecord, bool) {
	if r.Err != nil && noiseerr.Class(r.Err) == noiseerr.ErrCanceled {
		return JournalRecord{}, false
	}
	rec := JournalRecord{Net: r.Name}
	if r.Err != nil {
		rec.Error = r.Err.Error()
		rec.Class = noiseerr.ClassName(r.Err)
		return rec, true
	}
	rec.Quality = r.Quality.String()
	res := r.Res
	rec.Result = &JournalResult{
		VictimCeff:             res.VictimCeff,
		VictimRth:              res.VictimRth,
		VictimRtr:              res.VictimRtr,
		PulseHeight:            res.Pulse.Height,
		PulseWidth:             res.Pulse.Width,
		TPeak:                  res.TPeak,
		QuietCombinedDelay:     res.QuietCombinedDelay,
		NoisyCombinedDelay:     res.NoisyCombinedDelay,
		DelayNoise:             res.DelayNoise,
		InterconnectDelayNoise: res.InterconnectDelayNoise,
		Iterations:             res.Iterations,
	}
	return rec, true
}

// Report reconstructs the report a record describes. Torn records — no
// net name, or neither a result nor an error — return ok=false.
// encoding/json round-trips float64 exactly, so a reconstructed report
// renders byte-identically to the original.
func (rec JournalRecord) Report() (NetReport, bool) {
	if rec.Net == "" {
		return NetReport{}, false
	}
	rep := NetReport{Name: rec.Net}
	switch {
	case rec.Error != "":
		rep.Err = &resumedError{msg: rec.Error, class: noiseerr.ClassFromName(rec.Class)}
	case rec.Result != nil:
		res := rec.Result
		rep.Quality = resilience.QualityFromString(rec.Quality)
		rep.Res = &delaynoise.Result{
			VictimCeff:             res.VictimCeff,
			VictimRth:              res.VictimRth,
			VictimRtr:              res.VictimRtr,
			TPeak:                  res.TPeak,
			QuietCombinedDelay:     res.QuietCombinedDelay,
			NoisyCombinedDelay:     res.NoisyCombinedDelay,
			DelayNoise:             res.DelayNoise,
			InterconnectDelayNoise: res.InterconnectDelayNoise,
			Iterations:             res.Iterations,
		}
		rep.Res.Pulse.Height = res.PulseHeight
		rep.Res.Pulse.Width = res.PulseWidth
	default:
		return NetReport{}, false
	}
	return rep, true
}

// Journal appends completed net reports to a JSONL stream. Every record
// is written (and flushed to w) individually under a mutex, so a killed
// run loses at most the line being written — which ReadJournal
// tolerates. A nil *Journal is a valid no-op sink.
type Journal struct {
	mu sync.Mutex
	w  io.Writer
}

// NewJournal wraps w as a journal sink. Pass an *os.File opened with
// O_APPEND to make each record durable as it lands.
func NewJournal(w io.Writer) *Journal { return &Journal{w: w} }

// Record appends one report. Cancellation-class reports are skipped —
// a net aborted by a dying batch has no outcome worth replaying, and
// skipping it makes the net eligible for re-analysis on resume.
// Deadline, panic, and other real failures are recorded: the resumed
// run reproduces them without re-spending their budgets.
func (j *Journal) Record(r NetReport) error {
	if j == nil {
		return nil
	}
	rec, ok := ToRecord(r)
	if !ok {
		return nil
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	line = append(line, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	_, err = j.w.Write(line)
	return err
}

// resumedError reconstructs a journaled failure: Error() reproduces the
// recorded message byte-for-byte (so resumed reports render identically)
// and Unwrap restores errors.Is matching against the recorded
// noiseerr class sentinel.
type resumedError struct {
	msg   string
	class error
}

func (e *resumedError) Error() string { return e.msg }

func (e *resumedError) Unwrap() error { return e.class }

// ReadJournal parses a JSONL batch journal into reports keyed by net
// name, ready to hand to AnalyzeBatch as prior results. Malformed lines
// — including the torn final line of a killed run — are skipped, and
// the last record for a net wins, so journals survive crashes and
// appended resume runs.
func ReadJournal(r io.Reader) (map[string]NetReport, error) {
	out := map[string]NetReport{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec JournalRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			continue
		}
		rep, ok := rec.Report()
		if !ok {
			continue // a record with no net or neither outcome is torn
		}
		out[rec.Net] = rep
	}
	if err := sc.Err(); err != nil {
		return out, err
	}
	return out, nil
}
