package clarinet

import (
	"bufio"
	"errors"
	"io"
	"sync"

	"repro/internal/colblob"
	"repro/internal/delaynoise"
	"repro/internal/noiseerr"
	"repro/internal/resilience"
)

// JournalResult is the scalar subset of a delaynoise.Result that a
// journal preserves across a checkpoint/resume cycle: everything the
// reports and JSON output render, without the waveform payloads.
// encoding/json round-trips float64 exactly, so a resumed report
// renders byte-identically to the uninterrupted run.
type JournalResult struct {
	VictimCeff             float64 `json:"victimCeff"`
	VictimRth              float64 `json:"victimRth"`
	VictimRtr              float64 `json:"victimRtr"`
	PulseHeight            float64 `json:"pulseHeight"`
	PulseWidth             float64 `json:"pulseWidth"`
	TPeak                  float64 `json:"tPeak"`
	QuietCombinedDelay     float64 `json:"quietCombinedDelay"`
	NoisyCombinedDelay     float64 `json:"noisyCombinedDelay"`
	DelayNoise             float64 `json:"delayNoise"`
	InterconnectDelayNoise float64 `json:"interconnectDelayNoise"`
	Iterations             int     `json:"iterations"`
}

// JournalRecord is one JSONL line of a batch journal — and one NDJSON
// line of the noised streaming wire protocol: the outcome of one net,
// success or failure.
type JournalRecord struct {
	Net     string         `json:"net"`
	Quality string         `json:"quality,omitempty"`
	Class   string         `json:"class,omitempty"`
	Error   string         `json:"error,omitempty"`
	Result  *JournalResult `json:"result,omitempty"`
}

// ToRecord converts a completed report to its serialized journal/wire
// form. Cancellation-class reports return ok=false: a net aborted by a
// dying batch has no outcome worth replaying or transmitting.
func ToRecord(r NetReport) (JournalRecord, bool) {
	if r.Err != nil && noiseerr.Class(r.Err) == noiseerr.ErrCanceled {
		return JournalRecord{}, false
	}
	rec := JournalRecord{Net: r.Name}
	if r.Err != nil {
		rec.Error = r.Err.Error()
		rec.Class = noiseerr.ClassName(r.Err)
		return rec, true
	}
	rec.Quality = r.Quality.String()
	res := r.Res
	rec.Result = &JournalResult{
		VictimCeff:             res.VictimCeff,
		VictimRth:              res.VictimRth,
		VictimRtr:              res.VictimRtr,
		PulseHeight:            res.Pulse.Height,
		PulseWidth:             res.Pulse.Width,
		TPeak:                  res.TPeak,
		QuietCombinedDelay:     res.QuietCombinedDelay,
		NoisyCombinedDelay:     res.NoisyCombinedDelay,
		DelayNoise:             res.DelayNoise,
		InterconnectDelayNoise: res.InterconnectDelayNoise,
		Iterations:             res.Iterations,
	}
	return rec, true
}

// ToWireRecord serializes one report for a result stream. Unlike the
// journal form (ToRecord), canceled nets are transmitted — class
// "canceled", no result — because the client needs to know which nets a
// dying request never finished, even though a resumed request will
// re-analyze them.
func ToWireRecord(r NetReport) JournalRecord {
	if rec, ok := ToRecord(r); ok {
		return rec
	}
	return JournalRecord{
		Net:   r.Name,
		Class: noiseerr.ClassName(r.Err),
		Error: r.Err.Error(),
	}
}

// Report reconstructs the report a record describes. Torn records — no
// net name, or neither a result nor an error — return ok=false.
// encoding/json round-trips float64 exactly, so a reconstructed report
// renders byte-identically to the original.
func (rec JournalRecord) Report() (NetReport, bool) {
	if rec.Net == "" {
		return NetReport{}, false
	}
	rep := NetReport{Name: rec.Net}
	switch {
	case rec.Error != "":
		rep.Err = &resumedError{msg: rec.Error, class: noiseerr.ClassFromName(rec.Class)}
	case rec.Result != nil:
		res := rec.Result
		rep.Quality = resilience.QualityFromString(rec.Quality)
		rep.Res = &delaynoise.Result{
			VictimCeff:             res.VictimCeff,
			VictimRth:              res.VictimRth,
			VictimRtr:              res.VictimRtr,
			TPeak:                  res.TPeak,
			QuietCombinedDelay:     res.QuietCombinedDelay,
			NoisyCombinedDelay:     res.NoisyCombinedDelay,
			DelayNoise:             res.DelayNoise,
			InterconnectDelayNoise: res.InterconnectDelayNoise,
			Iterations:             res.Iterations,
		}
		rep.Res.Pulse.Height = res.PulseHeight
		rep.Res.Pulse.Width = res.PulseWidth
	default:
		return NetReport{}, false
	}
	return rep, true
}

// Journal appends completed net reports to a record stream through a
// JournalCodec. Every record is encoded and written individually under
// a mutex, so a killed run loses at most the record being written —
// which readers of either codec tolerate (torn JSONL line, torn binary
// frame). A nil *Journal is a valid no-op sink.
type Journal struct {
	mu    sync.Mutex
	rw    RecordWriter
	codec JournalCodec
}

// NewJournal wraps w as a JSONL journal sink — the historical default
// for raw writers and the debug view. File-backed journals go through
// OpenJournal, which defaults to the binary codec. Pass an *os.File
// opened with O_APPEND to make each record durable as it lands.
func NewJournal(w io.Writer) *Journal { return NewJournalWith(w, JSONL) }

// NewJournalWith wraps w as a journal sink using the given codec (nil
// means the binary default).
func NewJournalWith(w io.Writer, codec JournalCodec) *Journal {
	if codec == nil {
		codec = Binary
	}
	return &Journal{rw: codec.NewWriter(w), codec: codec}
}

// Codec reports the journal's encoding.
func (j *Journal) Codec() JournalCodec {
	if j == nil {
		return nil
	}
	return j.codec
}

// Record appends one report. Cancellation-class reports are skipped —
// a net aborted by a dying batch has no outcome worth replaying, and
// skipping it makes the net eligible for re-analysis on resume.
// Deadline, panic, and other real failures are recorded: the resumed
// run reproduces them without re-spending their budgets.
func (j *Journal) Record(r NetReport) error {
	if j == nil {
		return nil
	}
	rec, ok := ToRecord(r)
	if !ok {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.rw.WriteRecord(rec)
}

// resumedError reconstructs a journaled failure: Error() reproduces the
// recorded message byte-for-byte (so resumed reports render identically)
// and Unwrap restores errors.Is matching against the recorded
// noiseerr class sentinel.
type resumedError struct {
	msg   string
	class error
}

func (e *resumedError) Error() string { return e.msg }

func (e *resumedError) Unwrap() error { return e.class }

// ReadJournal parses a batch journal — either codec, sniffed from the
// first byte — into reports keyed by net name, ready to hand to
// AnalyzeBatch as prior results. Malformed records — including the torn
// tail of a killed run — are skipped, the last record for a net wins,
// so journals survive crashes and appended resume runs.
func ReadJournal(r io.Reader) (map[string]NetReport, error) {
	out := map[string]NetReport{}
	br := bufio.NewReaderSize(r, 64*1024)
	first, err := br.Peek(1)
	if err != nil {
		if err == io.EOF {
			return out, nil
		}
		return out, err
	}
	rr := SniffCodec(first[0]).NewReader(br)
	for {
		rec, err := rr.Next()
		switch {
		case err == nil:
		case errors.Is(err, ErrBadRecord):
			continue // one malformed record; the stream goes on
		case err == io.EOF || colblob.Corrupt(err):
			return out, nil // clean end, or the torn tail of a killed run
		default:
			return out, err
		}
		rep, ok := rec.Report()
		if !ok {
			continue // a record with no net or neither outcome is torn
		}
		out[rec.Net] = rep
	}
}
