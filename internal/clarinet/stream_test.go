package clarinet

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"repro/internal/delaynoise"
	"repro/internal/noiseerr"
	"repro/internal/resilience"
)

// TestStreamBatchResume feeds StreamBatch a prior map covering part of
// the batch: the resumed reports must arrive first and untouched, the
// rest must be analyzed and journaled, and exactly one report per net
// must be delivered.
func TestStreamBatchResume(t *testing.T) {
	stubAnalyze(t, func(ctx context.Context, c *delaynoise.Case, opt delaynoise.Options) (*delaynoise.Result, error) {
		return cannedResult(resilience.NetName(ctx)), nil
	})
	names, cases, lib := population(t, 4)
	tool := MustNew(lib, Config{Workers: 2})

	prior := map[string]NetReport{
		names[1]: {Res: cannedResult(names[1]), Quality: resilience.QualityRescued},
		names[3]: {Err: &resumedError{msg: "net " + names[3] + ": recorded failure", class: noiseerr.ErrNumerical}},
	}
	var journal bytes.Buffer
	ch := tool.StreamBatch(context.Background(), names, cases, prior, NewJournal(&journal))

	var got []NetReport
	for r := range ch {
		got = append(got, r)
	}
	if len(got) != 4 {
		t.Fatalf("got %d reports, want 4", len(got))
	}
	// Resumed nets stream first, in input order, with identity intact.
	if got[0].Name != names[1] || got[0].Quality != resilience.QualityRescued {
		t.Fatalf("first report = %+v, want resumed %s", got[0], names[1])
	}
	if got[1].Name != names[3] || !errors.Is(got[1].Err, noiseerr.ErrNumerical) {
		t.Fatalf("second report = %+v, want resumed failure %s", got[1], names[3])
	}
	seen := map[string]bool{}
	for _, r := range got {
		if seen[r.Name] {
			t.Fatalf("net %s delivered twice", r.Name)
		}
		seen[r.Name] = true
	}
	if n := tool.Metrics().Snapshot().Counters["nets.resumed"]; n != 2 {
		t.Fatalf("nets.resumed = %d, want 2", n)
	}
	// Only the two fresh nets hit the journal.
	recs, err := ReadJournal(bytes.NewReader(journal.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("journal has %d records, want 2: %v", len(recs), recs)
	}
	if _, ok := recs[names[1]]; ok {
		t.Fatal("resumed net must not be re-journaled")
	}
}

// TestRecordRoundTrip checks the exported wire conversions: a report
// survives ToRecord → JSON-free → Report with its renderable fields and
// error class intact, and cancellation/torn records are rejected.
func TestRecordRoundTrip(t *testing.T) {
	res := cannedResult("netA")
	rec, ok := ToRecord(NetReport{Name: "netA", Res: res, Quality: resilience.QualityFallback})
	if !ok || rec.Net != "netA" || rec.Quality != "fallback" || rec.Result == nil {
		t.Fatalf("record = %+v ok=%v", rec, ok)
	}
	back, ok := rec.Report()
	if !ok {
		t.Fatal("round trip rejected")
	}
	if back.Res.DelayNoise != res.DelayNoise || back.Res.Pulse.Height != res.Pulse.Height {
		t.Fatalf("round trip changed result: %+v vs %+v", back.Res, res)
	}
	if back.Quality != resilience.QualityFallback {
		t.Fatalf("quality = %v", back.Quality)
	}

	rec, ok = ToRecord(NetReport{Name: "netB", Err: noiseerr.WithNet("netB", noiseerr.Numericalf("singular"))})
	if !ok || rec.Class != "numerical" || rec.Error == "" {
		t.Fatalf("failure record = %+v ok=%v", rec, ok)
	}
	back, ok = rec.Report()
	if !ok || !errors.Is(back.Err, noiseerr.ErrNumerical) {
		t.Fatalf("failure round trip = %+v ok=%v", back, ok)
	}
	if back.Err.Error() != rec.Error {
		t.Fatalf("message changed: %q vs %q", back.Err.Error(), rec.Error)
	}

	if _, ok := ToRecord(NetReport{Name: "netC", Err: noiseerr.Canceled(context.Canceled)}); ok {
		t.Fatal("canceled reports must not serialize")
	}
	if _, ok := (JournalRecord{Net: "torn"}).Report(); ok {
		t.Fatal("torn record must be rejected")
	}
	if _, ok := (JournalRecord{}).Report(); ok {
		t.Fatal("nameless record must be rejected")
	}
}
