package clarinet

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/align"
	"repro/internal/delaynoise"
	"repro/internal/faultinject"
	"repro/internal/nlsim"
	"repro/internal/noiseerr"
	"repro/internal/resilience"
)

// cannedResult derives a deterministic, net-unique Result from the net
// name, standing in for a real analysis in chaos tests: the scalar
// fields are all the report and journal layers consume.
func cannedResult(name string) *delaynoise.Result {
	h := fnv.New64a()
	h.Write([]byte(name))
	x := h.Sum64()
	f := func(k uint, scale float64) float64 {
		return scale * (0.1 + float64((x>>k)&0xff)/256)
	}
	res := &delaynoise.Result{
		VictimCeff:             f(0, 1e-13),
		VictimRth:              f(8, 1000),
		VictimRtr:              f(16, 800),
		TPeak:                  f(24, 1e-9),
		QuietCombinedDelay:     f(32, 1e-10),
		DelayNoise:             5e-11 * (0.1 + float64(x>>11)/(1<<53)), // unique: sort key
		InterconnectDelayNoise: f(48, 2e-11),
		Iterations:             int(x%7) + 1,
	}
	res.NoisyCombinedDelay = res.QuietCombinedDelay + res.DelayNoise
	res.Pulse = align.Pulse{Height: f(56, 0.5), Width: f(4, 1e-10)}
	return res
}

// cannedAnalyze is the fault-free base analysis of the chaos suite.
func cannedAnalyze(ctx context.Context, c *delaynoise.Case, opt delaynoise.Options) (*delaynoise.Result, error) {
	return cannedResult(resilience.NetName(ctx)), nil
}

// chaosSeeds returns the fault-injection seeds to run: CHAOS_SEED
// overrides the default 3-seed matrix (the CI chaos job runs one seed
// per matrix entry).
func chaosSeeds(t *testing.T) []uint64 {
	if s := os.Getenv("CHAOS_SEED"); s != "" {
		seed, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			t.Fatalf("CHAOS_SEED=%q: %v", s, err)
		}
		return []uint64{seed}
	}
	return []uint64{1, 2, 3}
}

// TestChaosBatch is the fault-injected acceptance batch: seeded
// convergence failures plus exactly one panic and one stalled net. The
// batch must complete with exact/rescued/fallback/failed/panicked/
// deadline counts derived from the injection plan, never from luck.
func TestChaosBatch(t *testing.T) {
	for _, seed := range chaosSeeds(t) {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			names, cases, lib := population(t, 12)
			plan := faultinject.New(seed, faultinject.Config{
				ConvergenceFrac: 0.25,
				PersistentFrac:  0.15,
				FailureFrac:     0.10,
			})
			plan.Assign(names[0], faultinject.KindPanic) // exactly one panic
			plan.Assign(names[1], faultinject.KindStall) // exactly one runaway net
			stubAnalyze(t, plan.WrapAnalyze(cannedAnalyze))

			tool := MustNew(lib, Config{
				Align:       delaynoise.AlignExhaustive,
				Workers:     4,
				PrecharGrid: 5,
				NetTimeout:  50 * time.Millisecond, // only the stalled net ever hits it
				Resilience:  resilience.DefaultPolicy(),
			})
			// Warm the alignment-table cache outside the deadline: the
			// prechar rescue rung then hits the cache instead of spending
			// the persistent nets' 50ms budgets on a real table build.
			exp := plan.Expect(names)
			idx := map[string]int{}
			for i, n := range names {
				idx[n] = i
			}
			for _, n := range exp[faultinject.KindPersistent] {
				c := cases[idx[n]]
				if _, err := tool.Session().Table(context.Background(), c.Receiver, c.Victim.OutputRising); err != nil {
					t.Fatal(err)
				}
			}

			var journal bytes.Buffer
			reports := tool.AnalyzeBatch(context.Background(), names, cases, nil, NewJournal(&journal))

			kindOf := map[string]faultinject.Kind{}
			for k, nets := range exp {
				for _, n := range nets {
					kindOf[n] = k
				}
			}
			for i, r := range reports {
				if r.Name != names[i] {
					t.Fatalf("report %d out of order: %s", i, r.Name)
				}
				switch kindOf[r.Name] {
				case faultinject.KindNone:
					if r.Err != nil || r.Quality != resilience.QualityExact {
						t.Errorf("%s (none): err=%v quality=%v", r.Name, r.Err, r.Quality)
					}
				case faultinject.KindConvergence:
					if r.Err != nil || r.Quality != resilience.QualityRescued {
						t.Errorf("%s (convergence): err=%v quality=%v", r.Name, r.Err, r.Quality)
					}
				case faultinject.KindPersistent:
					if r.Err != nil || r.Quality != resilience.QualityFallback {
						t.Errorf("%s (persistent): err=%v quality=%v", r.Name, r.Err, r.Quality)
					}
				case faultinject.KindFailure:
					if !errors.Is(r.Err, noiseerr.ErrNumerical) {
						t.Errorf("%s (failure): err=%v, want ErrNumerical", r.Name, r.Err)
					}
				case faultinject.KindPanic:
					var pe *noiseerr.PanicError
					if !errors.As(r.Err, &pe) || len(pe.Stack) == 0 {
						t.Errorf("%s (panic): err=%v, want PanicError with stack", r.Name, r.Err)
					}
					if noiseerr.ClassName(r.Err) != "internal" {
						t.Errorf("%s (panic): class=%s", r.Name, noiseerr.ClassName(r.Err))
					}
				case faultinject.KindStall:
					if !errors.Is(r.Err, noiseerr.ErrDeadline) || noiseerr.ClassName(r.Err) != "deadline" {
						t.Errorf("%s (stall): err=%v class=%s, want deadline", r.Name, r.Err, noiseerr.ClassName(r.Err))
					}
				}
			}

			m := tool.Metrics().Snapshot()
			wantFailed := int64(len(exp[faultinject.KindFailure]) + len(exp[faultinject.KindPanic]) + len(exp[faultinject.KindStall]))
			for counter, want := range map[string]int64{
				"nets.analyzed": int64(len(names)),
				"nets.exact":    int64(len(exp[faultinject.KindNone])),
				"nets.rescued":  int64(len(exp[faultinject.KindConvergence])),
				"nets.fallback": int64(len(exp[faultinject.KindPersistent])),
				"nets.failed":   wantFailed,
				"nets.panicked": 1,
				"nets.deadline": 1,
				"nets.canceled": 0,
			} {
				if got := m.Counters[counter]; got != want {
					t.Errorf("%s = %d, want %d (plan: %v)", counter, got, want, exp)
				}
			}

			// Every net has a journal entry (nothing was canceled), and
			// the journal replays to the same outcomes.
			prior, err := ReadJournal(bytes.NewReader(journal.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			if len(prior) != len(names) {
				t.Errorf("journal has %d records, want %d", len(prior), len(names))
			}
			if out := os.Getenv("CHAOS_JOURNAL_OUT"); out != "" {
				if err := os.WriteFile(fmt.Sprintf("%s.seed%d.jsonl", out, seed), journal.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// cancelAfter is a journal sink that cancels a context once n records
// have landed — the deterministic stand-in for kill -9 mid-batch.
type cancelAfter struct {
	mu     sync.Mutex
	buf    bytes.Buffer
	n      int
	cancel context.CancelFunc
}

func (w *cancelAfter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	n, err := w.buf.Write(p)
	if w.n--; w.n == 0 {
		w.cancel()
	}
	return n, err
}

// TestResumeByteIdentical kills a journaled batch after a few records,
// resumes from the journal, and demands the merged reports render
// byte-identically to an uninterrupted run — the acceptance criterion
// for checkpoint/resume.
func TestResumeByteIdentical(t *testing.T) {
	const seed = 5
	cfg := faultinject.Config{ConvergenceFrac: 0.3, FailureFrac: 0.2}
	toolCfg := Config{
		Align:      delaynoise.AlignExhaustive,
		Workers:    2,
		Resilience: resilience.Policy{DCHomotopy: true, FallbackToPrechar: true},
	}
	render := func(reports []NetReport) string {
		var b bytes.Buffer
		WriteReportOpts(&b, reports, ReportOptions{Quality: true})
		return b.String()
	}

	// Reference: one uninterrupted run.
	names, cases, lib := population(t, 8)
	stubAnalyze(t, faultinject.New(seed, cfg).WrapAnalyze(cannedAnalyze))
	want := render(MustNew(lib, toolCfg).AnalyzeAllContext(context.Background(), names, cases))

	// Interrupted run: the journal sink kills the batch after 3 records.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sink := &cancelAfter{n: 3, cancel: cancel}
	stubAnalyze(t, faultinject.New(seed, cfg).WrapAnalyze(cannedAnalyze))
	killed := MustNew(lib, toolCfg)
	killed.AnalyzeBatch(ctx, names, cases, nil, NewJournal(sink))
	if got := killed.Metrics().Counter("nets.canceled").Value(); got == 0 {
		t.Fatal("interrupted run canceled no nets; the kill came too late to test resume")
	}

	// Resume from the journal — with a torn trailing line, as a real
	// kill mid-write would leave.
	journal := append(sink.buf.Bytes(), []byte(`{"net":"torn","resu`)...)
	prior, err := ReadJournal(bytes.NewReader(journal))
	if err != nil {
		t.Fatal(err)
	}
	if len(prior) == 0 {
		t.Fatal("journal replay found no completed nets")
	}
	stubAnalyze(t, faultinject.New(seed, cfg).WrapAnalyze(cannedAnalyze))
	resumedTool := MustNew(lib, toolCfg)
	got := render(resumedTool.AnalyzeBatch(context.Background(), names, cases, prior, nil))
	if got != want {
		t.Fatalf("resumed report differs from uninterrupted run:\n--- want ---\n%s--- got ---\n%s", want, got)
	}
	if n := resumedTool.Metrics().Counter("nets.resumed").Value(); n != int64(len(prior)) {
		t.Fatalf("nets.resumed = %d, want %d", n, len(prior))
	}
}

// TestPerNetDeadline runs a batch with one stalled net under a per-net
// budget: only that net may fail, with the deadline class and stage
// attribution, while the batch and its siblings complete.
func TestPerNetDeadline(t *testing.T) {
	names, cases, lib := population(t, 3)
	plan := faultinject.New(9, faultinject.Config{})
	plan.Assign(names[1], faultinject.KindStall)
	stubAnalyze(t, plan.WrapAnalyze(cannedAnalyze))
	tool := MustNew(lib, Config{Workers: 3, NetTimeout: 40 * time.Millisecond})
	reports := tool.AnalyzeAllContext(context.Background(), names, cases)

	r := reports[1]
	if !errors.Is(r.Err, noiseerr.ErrDeadline) {
		t.Fatalf("stalled net err = %v, want ErrDeadline", r.Err)
	}
	if !errors.Is(r.Err, context.DeadlineExceeded) {
		t.Fatalf("stalled net err = %v, want context.DeadlineExceeded in chain", r.Err)
	}
	var se *noiseerr.StageError
	if !errors.As(r.Err, &se) || se.Net != names[1] {
		t.Fatalf("stalled net lacks attribution: %v", r.Err)
	}
	for _, i := range []int{0, 2} {
		if reports[i].Err != nil {
			t.Fatalf("sibling %s failed: %v", names[i], reports[i].Err)
		}
	}
	m := tool.Metrics()
	if got := m.Counter("nets.deadline").Value(); got != 1 {
		t.Fatalf("nets.deadline = %d, want 1", got)
	}
	if got := m.Counter("nets.failed").Value(); got != 1 {
		t.Fatalf("nets.failed = %d, want 1", got)
	}
	if got := m.Counter("nets.canceled").Value(); got != 0 {
		t.Fatalf("nets.canceled = %d, want 0", got)
	}
}

// TestCanceledBatchCountsCanceledNotFailed is the counter bugfix test:
// a pre-canceled batch must count every net in nets.canceled and none
// in nets.failed or nets.analyzed.
func TestCanceledBatchCountsCanceledNotFailed(t *testing.T) {
	names, cases, lib := population(t, 4)
	tool := MustNew(lib, Config{Workers: 2})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tool.AnalyzeAllContext(ctx, names, cases)
	m := tool.Metrics()
	if got := m.Counter("nets.canceled").Value(); got != 4 {
		t.Fatalf("nets.canceled = %d, want 4", got)
	}
	if got := m.Counter("nets.failed").Value(); got != 0 {
		t.Fatalf("nets.failed = %d, want 0", got)
	}
	if got := m.Counter("nets.analyzed").Value(); got != 0 {
		t.Fatalf("nets.analyzed = %d, want 0", got)
	}
}

// TestFanOutPanicContainment injects a panic into one worker: the
// batch must complete, the poisoned net must carry a PanicError with
// stack and net attribution, and the Stream path must contain it too.
func TestFanOutPanicContainment(t *testing.T) {
	names, cases, lib := population(t, 3)
	plan := faultinject.New(11, faultinject.Config{})
	plan.Assign(names[2], faultinject.KindPanic)
	stubAnalyze(t, plan.WrapAnalyze(cannedAnalyze))
	tool := MustNew(lib, Config{Workers: 3})
	reports := tool.AnalyzeAllContext(context.Background(), names, cases)

	var pe *noiseerr.PanicError
	if !errors.As(reports[2].Err, &pe) {
		t.Fatalf("panicked net err = %v, want PanicError", reports[2].Err)
	}
	if !strings.Contains(fmt.Sprint(pe.Value), names[2]) || len(pe.Stack) == 0 {
		t.Fatalf("panic payload incomplete: value=%v stack=%d bytes", pe.Value, len(pe.Stack))
	}
	if !errors.Is(reports[2].Err, noiseerr.ErrInternal) {
		t.Fatal("panic not classified internal")
	}
	var se *noiseerr.StageError
	if !errors.As(reports[2].Err, &se) || se.Net != names[2] || se.Stage != noiseerr.StageResilience {
		t.Fatalf("panic attribution = %+v", se)
	}
	for _, i := range []int{0, 1} {
		if reports[i].Err != nil {
			t.Fatalf("sibling %s poisoned: %v", names[i], reports[i].Err)
		}
	}
	if got := tool.Metrics().Counter("nets.panicked").Value(); got != 1 {
		t.Fatalf("nets.panicked = %d, want 1", got)
	}

	// Stream must survive the same poison without wedging.
	got := 0
	for range tool.Stream(context.Background(), names, cases) {
		got++
	}
	if got != len(names) {
		t.Fatalf("stream delivered %d of %d reports", got, len(names))
	}
}

// TestSolverRescueEndToEnd injects convergence failures at real nlsim
// checkpoints (no stubbed analysis): the unrescued tool must fail the
// net with a convergence error, and the homotopy rung must heal it with
// quality "rescued".
func TestSolverRescueEndToEnd(t *testing.T) {
	names, cases, lib := population(t, 1)
	plan := faultinject.New(13, faultinject.Config{})
	plan.Assign(names[0], faultinject.KindSolverConvergence)
	restore := nlsim.SetCheckpointHook(plan.SolverCheckpoint())
	defer restore()

	base := Config{
		Hold:    delaynoise.HoldTransient,
		Align:   delaynoise.AlignReceiverInput,
		Workers: 1,
	}
	r := MustNew(lib, base).AnalyzeNet(context.Background(), names[0], cases[0])
	if !errors.Is(r.Err, noiseerr.ErrConvergence) {
		t.Fatalf("unrescued err = %v, want ErrConvergence", r.Err)
	}

	rescued := base
	rescued.Resilience = resilience.Policy{DCHomotopy: true}
	tool := MustNew(lib, rescued)
	r = tool.AnalyzeNet(context.Background(), names[0], cases[0])
	if r.Err != nil {
		t.Fatalf("rescued net failed: %v", r.Err)
	}
	if r.Quality != resilience.QualityRescued {
		t.Fatalf("quality = %v, want rescued", r.Quality)
	}
	m := tool.Metrics()
	if got := m.Counter("nets.rescued").Value(); got != 1 {
		t.Fatalf("nets.rescued = %d, want 1", got)
	}
	if got := m.Counter("rescue.homotopy").Value(); got != 1 {
		t.Fatalf("rescue.homotopy = %d, want 1", got)
	}
}

// TestJournalRoundTrip exercises the journal layer directly: canceled
// reports are skipped, failures round-trip message and class, torn and
// garbage lines are tolerated, and the last record for a net wins.
func TestJournalRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf)
	okRep := NetReport{Name: "good", Res: cannedResult("good"), Quality: resilience.QualityRescued}
	if err := j.Record(okRep); err != nil {
		t.Fatal(err)
	}
	failRep := NetReport{Name: "bad", Err: noiseerr.WithNet("bad", noiseerr.Numericalf("singular"))}
	if err := j.Record(failRep); err != nil {
		t.Fatal(err)
	}
	if err := j.Record(NetReport{Name: "dying", Err: noiseerr.Canceled(context.Canceled)}); err != nil {
		t.Fatal(err)
	}
	// A superseding record for "good" and assorted corruption.
	better := NetReport{Name: "good", Res: cannedResult("better"), Quality: resilience.QualityExact}
	if err := j.Record(better); err != nil {
		t.Fatal(err)
	}
	buf.WriteString("not json at all\n")
	buf.WriteString(`{"net":"torn","resul`)

	prior, err := ReadJournal(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(prior) != 2 {
		t.Fatalf("replayed %d nets, want 2 (got %v)", len(prior), prior)
	}
	if _, ok := prior["dying"]; ok {
		t.Fatal("canceled report must not be journaled")
	}
	good := prior["good"]
	if good.Quality != resilience.QualityExact || good.Res.DelayNoise != cannedResult("better").DelayNoise {
		t.Fatalf("last record did not win: %+v", good)
	}
	bad := prior["bad"]
	if bad.Err == nil || bad.Err.Error() != failRep.Err.Error() {
		t.Fatalf("failure message changed: %v vs %v", bad.Err, failRep.Err)
	}
	if !errors.Is(bad.Err, noiseerr.ErrNumerical) {
		t.Fatal("failure class lost through the journal")
	}
	// A nil journal is a valid sink.
	var nilJ *Journal
	if err := nilJ.Record(okRep); err != nil {
		t.Fatal(err)
	}
}

// TestQualityColumn checks the opt-in report column.
func TestQualityColumn(t *testing.T) {
	reports := []NetReport{
		{Name: "a", Res: cannedResult("a"), Quality: resilience.QualityFallback},
		{Name: "b", Err: noiseerr.Numericalf("boom")},
	}
	var buf bytes.Buffer
	WriteReportOpts(&buf, reports, ReportOptions{Quality: true})
	out := buf.String()
	if !strings.Contains(out, "quality") || !strings.Contains(out, "fallback") {
		t.Fatalf("quality column missing:\n%s", out)
	}
	buf.Reset()
	WriteReport(&buf, reports)
	if strings.Contains(buf.String(), "quality") {
		t.Fatal("quality column must be opt-in")
	}
}
