package clarinet

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/align"
	"repro/internal/colblob"
	"repro/internal/delaynoise"
	"repro/internal/noiseerr"
	"repro/internal/resilience"
)

// TestCodecByName pins the flag vocabulary and the binary default.
func TestCodecByName(t *testing.T) {
	for name, want := range map[string]JournalCodec{
		"": Binary, "binary": Binary, "jsonl": JSONL, "json": JSONL,
	} {
		c, err := CodecByName(name)
		if err != nil || c != want {
			t.Fatalf("CodecByName(%q) = %v, %v", name, c, err)
		}
	}
	if _, err := CodecByName("protobuf"); err == nil {
		t.Fatal("CodecByName accepted an unknown format")
	}
}

// TestBinaryRecordRoundTrip pins the compact record payload: every
// field, hostile floats included, must survive bit-exactly through one
// encoder/decoder pair (records chain, so order matters and is shared).
func TestBinaryRecordRoundTrip(t *testing.T) {
	recs := []JournalRecord{
		{Net: "n1", Quality: "exact", Result: &JournalResult{
			VictimCeff: 1.25e-13, VictimRth: 812.5, VictimRtr: 633,
			PulseHeight: 0.41, PulseWidth: 3.5e-11, TPeak: 1.5e-10,
			QuietCombinedDelay: 2.25e-10, NoisyCombinedDelay: 2.5e-10,
			DelayNoise: 2.5e-11, InterconnectDelayNoise: 1e-12, Iterations: 6,
		}},
		{Net: "n2", Class: "numerical", Error: "nlsim: newton stalled at t=1.2e-10"},
		{Net: "n3", Quality: "fallback", Result: &JournalResult{
			DelayNoise: math.Copysign(0, -1), TPeak: math.MaxFloat64,
			VictimCeff: math.SmallestNonzeroFloat64,
		}},
		// The exact-sum fast path, and its escape: a NoisyCombinedDelay
		// that is NOT quiet+noise (rounded differently upstream).
		{Net: "n3_sibling", Quality: "exact", Result: &JournalResult{
			QuietCombinedDelay: 2e-10, DelayNoise: 3e-11,
			NoisyCombinedDelay: 2e-10 + 3e-11, Iterations: 2,
		}},
		{Net: "n3_cousin", Quality: "rescued", Result: &JournalResult{
			QuietCombinedDelay: 2e-10, DelayNoise: 3e-11,
			NoisyCombinedDelay: math.Nextafter(2e-10+3e-11, 1), Iterations: 3,
		}},
		// Out-of-vocabulary enum values must survive via the escape.
		{Net: "n4", Quality: "heroic", Class: "future-class", Error: "x"},
		{Net: ""},
	}
	var enc BinaryRecordEncoder
	var dec BinaryRecordDecoder
	for i, rec := range recs {
		got, err := dec.Decode(enc.Append(nil, rec))
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, rec) {
			t.Fatalf("record %d:\n got  %+v\n want %+v", i, got, rec)
		}
	}
	var fresh BinaryRecordDecoder
	if _, err := fresh.Decode([]byte{3, 'a', 'b'}); err == nil {
		t.Fatal("truncated payload decoded")
	}
}

// TestBinaryEnumsPinned: the one-byte enum tables must cover every
// value the rest of the codebase can produce — a new quality or error
// class that silently falls onto the escape path costs bytes, and a
// REORDERED table breaks decoding of existing journals.
func TestBinaryEnumsPinned(t *testing.T) {
	wantQuality := []string{"", "exact", "rescued", "fallback"}
	if !reflect.DeepEqual(qualityEnum, wantQuality) {
		t.Fatalf("qualityEnum = %q (append-only; reordering breaks old journals)", qualityEnum)
	}
	for _, q := range []resilience.Quality{resilience.QualityExact, resilience.QualityRescued, resilience.QualityFallback} {
		if !contains(qualityEnum, q.String()) {
			t.Fatalf("quality %q missing from enum table", q)
		}
	}
	wantClass := []string{"", "invalid-case", "convergence", "numerical",
		"canceled", "deadline", "internal", "unclassified"}
	if !reflect.DeepEqual(classEnum, wantClass) {
		t.Fatalf("classEnum = %q (append-only; reordering breaks old journals)", classEnum)
	}
	for _, err := range []error{
		noiseerr.Invalidf("x"), noiseerr.Convergencef("x"), noiseerr.Numericalf("x"),
		noiseerr.Canceled(context.Canceled), noiseerr.Deadline(context.DeadlineExceeded),
		noiseerr.Internalf("x"),
	} {
		if name := noiseerr.ClassName(err); !contains(classEnum, name) {
			t.Fatalf("class %q missing from enum table", name)
		}
	}
}

func contains(vocab []string, s string) bool {
	for _, v := range vocab {
		if v == s {
			return true
		}
	}
	return false
}

// TestBinaryJournalRoundTrip mirrors TestJournalRoundTrip on the binary
// codec: canceled reports skipped, failures round-tripping message and
// class, a torn trailing frame tolerated, last record winning — and
// ReadJournal sniffing the format with no hint.
func TestBinaryJournalRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournalWith(&buf, Binary)
	if got := j.Codec().Name(); got != "binary" {
		t.Fatalf("codec = %q", got)
	}
	okRep := NetReport{Name: "good", Res: cannedResult("good"), Quality: resilience.QualityRescued}
	failRep := NetReport{Name: "bad", Err: noiseerr.WithNet("bad", noiseerr.Numericalf("singular"))}
	for _, r := range []NetReport{
		okRep,
		failRep,
		{Name: "dying", Err: noiseerr.Canceled(context.Canceled)},
		{Name: "good", Res: cannedResult("better"), Quality: resilience.QualityExact},
	} {
		if err := j.Record(r); err != nil {
			t.Fatal(err)
		}
	}
	// The torn tail a kill mid-write leaves: half a frame.
	var tornEnc BinaryRecordEncoder
	whole := colblob.AppendFrame(nil, colblob.FrameRecord, tornEnc.Append(nil, JournalRecord{Net: "torn"}))
	buf.Write(whole[:len(whole)-5])

	prior, err := ReadJournal(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(prior) != 2 {
		t.Fatalf("replayed %d nets, want 2 (got %v)", len(prior), prior)
	}
	if _, ok := prior["dying"]; ok {
		t.Fatal("canceled report must not be journaled")
	}
	good := prior["good"]
	if good.Quality != resilience.QualityExact || good.Res.DelayNoise != cannedResult("better").DelayNoise {
		t.Fatalf("last record did not win: %+v", good)
	}
	bad := prior["bad"]
	if bad.Err == nil || bad.Err.Error() != failRep.Err.Error() {
		t.Fatalf("failure message changed: %v vs %v", bad.Err, failRep.Err)
	}
	if !errors.Is(bad.Err, noiseerr.ErrNumerical) {
		t.Fatal("failure class lost through the journal")
	}
}

// TestBinaryJournalByteIdentical renders a report set journaled through
// the binary codec and demands byte-identity with the original — the
// same acceptance criterion the JSONL resume path meets.
func TestBinaryJournalByteIdentical(t *testing.T) {
	reports := []NetReport{
		{Name: "a", Res: cannedResult("a"), Quality: resilience.QualityExact},
		{Name: "b", Res: cannedResult("b"), Quality: resilience.QualityFallback},
		{Name: "c", Err: noiseerr.WithNet("c", noiseerr.Convergencef("homotopy exhausted"))},
	}
	render := func(reps []NetReport) string {
		var b bytes.Buffer
		WriteReportOpts(&b, reps, ReportOptions{Quality: true})
		return b.String()
	}
	want := render(reports)
	var buf bytes.Buffer
	j := NewJournalWith(&buf, Binary)
	for _, r := range reports {
		if err := j.Record(r); err != nil {
			t.Fatal(err)
		}
	}
	prior, err := ReadJournal(&buf)
	if err != nil {
		t.Fatal(err)
	}
	resumed := make([]NetReport, 0, len(reports))
	for _, r := range reports {
		resumed = append(resumed, prior[r.Name])
	}
	if got := render(resumed); got != want {
		t.Fatalf("binary-journaled report differs:\n--- want ---\n%s--- got ---\n%s", want, got)
	}
}

// denseResult mimics real analyzed output for size tests: solver floats
// carry full-entropy 52-bit mantissas (they serialize to ~17 significant
// digits in JSON), and NoisyCombinedDelay is definitionally
// quiet+noise. cannedResult's byte-derived fractions serialize to short
// decimals and would flatter JSONL.
func denseResult(name string) *delaynoise.Result {
	h := fnv.New64a()
	h.Write([]byte(name))
	x := h.Sum64()
	next := func(scale float64) float64 {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		return scale * (0.5 + float64(x&((1<<52)-1))/(1<<53))
	}
	res := &delaynoise.Result{
		VictimCeff:             next(1e-13),
		VictimRth:              next(1000),
		VictimRtr:              next(800),
		TPeak:                  next(1e-9),
		QuietCombinedDelay:     next(1e-10),
		DelayNoise:             next(5e-11),
		InterconnectDelayNoise: next(2e-11),
		Iterations:             int(x%7) + 1,
	}
	res.NoisyCombinedDelay = res.QuietCombinedDelay + res.DelayNoise
	res.Pulse = align.Pulse{Height: next(0.5), Width: next(1e-10)}
	return res
}

// TestBinaryJournalSmaller pins the headline size claim: over a batch
// of full result records, the binary journal is at least 5x smaller
// than the JSONL one. (BenchmarkJournalCodec measures the same ratio on
// the 300-net reference batch for the trajectory.)
func TestBinaryJournalSmaller(t *testing.T) {
	var bin, jsonl bytes.Buffer
	bj := NewJournalWith(&bin, Binary)
	jj := NewJournalWith(&jsonl, JSONL)
	const nets = 32
	for i := 0; i < nets; i++ {
		name := fmt.Sprintf("net_%04d_m3_vict", i)
		rep := NetReport{Name: name, Res: denseResult(name), Quality: resilience.QualityExact}
		if err := bj.Record(rep); err != nil {
			t.Fatal(err)
		}
		if err := jj.Record(rep); err != nil {
			t.Fatal(err)
		}
	}
	if 5*bin.Len() > jsonl.Len() {
		t.Fatalf("binary journal %dB/net vs JSONL %dB/net (%.2fx); want >= 5x smaller",
			bin.Len()/nets, jsonl.Len()/nets, float64(jsonl.Len())/float64(bin.Len()))
	}
}

// TestOpenJournalTornTailRepair is the file-level torn-tail test for
// both codecs: kill a writer mid-record, reopen, append, and demand a
// clean replay of everything but the torn record. Mirrors the JSONL
// torn-line tests at the binary frame level, where repair truncates
// instead of inserting a separator.
func TestOpenJournalTornTailRepair(t *testing.T) {
	for _, codec := range []JournalCodec{Binary, JSONL} {
		t.Run(codec.Name(), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "run.journal")
			j, closeJ, err := OpenJournal(path, codec)
			if err != nil {
				t.Fatal(err)
			}
			if err := j.Record(NetReport{Name: "first", Res: cannedResult("first")}); err != nil {
				t.Fatal(err)
			}
			if err := closeJ(); err != nil {
				t.Fatal(err)
			}
			// Simulate the kill: append half an encoded record.
			rec, _ := ToRecord(NetReport{Name: "torn", Res: cannedResult("torn")})
			var encBuf bytes.Buffer
			if err := codec.NewWriter(&encBuf).WriteRecord(rec); err != nil {
				t.Fatal(err)
			}
			enc := encBuf.Bytes()
			f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write(enc[:len(enc)/2]); err != nil {
				t.Fatal(err)
			}
			f.Close()

			// Reopen: repair must confine the damage to the torn record.
			j, closeJ, err = OpenJournal(path, codec)
			if err != nil {
				t.Fatal(err)
			}
			if got := j.Codec(); got != codec {
				t.Fatalf("reopened codec = %v, want %v (sniff broke)", got, codec)
			}
			if err := j.Record(NetReport{Name: "second", Res: cannedResult("second")}); err != nil {
				t.Fatal(err)
			}
			if err := closeJ(); err != nil {
				t.Fatal(err)
			}
			prior, err := ReadJournalFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if len(prior) != 2 {
				t.Fatalf("replayed %d nets, want 2: %v", len(prior), prior)
			}
			for _, n := range []string{"first", "second"} {
				if _, ok := prior[n]; !ok {
					t.Fatalf("net %q lost", n)
				}
			}
			if _, ok := prior["torn"]; ok {
				t.Fatal("torn record replayed")
			}
		})
	}
}

// TestOpenJournalFormatSticky: an existing journal's format wins over
// the requested codec, so a resumed run never interleaves encodings in
// one file.
func TestOpenJournalFormatSticky(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	j, closeJ, err := OpenJournal(path, JSONL)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Record(NetReport{Name: "first", Res: cannedResult("first")}); err != nil {
		t.Fatal(err)
	}
	closeJ()

	// Reopen asking for binary: the sniffed JSONL must stick.
	j, closeJ, err = OpenJournal(path, Binary)
	if err != nil {
		t.Fatal(err)
	}
	if got := j.Codec().Name(); got != "jsonl" {
		t.Fatalf("codec = %q, want jsonl (existing format must win)", got)
	}
	if err := j.Record(NetReport{Name: "second", Res: cannedResult("second")}); err != nil {
		t.Fatal(err)
	}
	closeJ()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.IndexByte(data, colblob.FrameMagic) != -1 {
		t.Fatal("binary frame interleaved into a JSONL journal")
	}
	prior, err := ReadJournalFile(path)
	if err != nil || len(prior) != 2 {
		t.Fatalf("replay = %d nets, %v", len(prior), err)
	}
}

// TestBinaryJournalMidFileCorruption: a flipped byte mid-file costs the
// records behind it (the frame chain breaks) but never fabricates one,
// and repair-on-open truncates the unusable tail so appends work.
func TestBinaryJournalMidFileCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	j, closeJ, err := OpenJournal(path, Binary)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []string{"a", "b", "c"} {
		if err := j.Record(NetReport{Name: n, Res: cannedResult(n)}); err != nil {
			t.Fatal(err)
		}
	}
	closeJ()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x20
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	prior, err := ReadJournalFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(prior) >= 3 {
		t.Fatalf("corrupt journal replayed all %d nets", len(prior))
	}
	if _, _, err := OpenJournal(path, Binary); err != nil {
		t.Fatalf("repair-on-open failed: %v", err)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() >= int64(len(data)) {
		t.Fatalf("repair left the corrupt tail in place (%d bytes)", st.Size())
	}
}
