package clarinet

import (
	"fmt"
	"io"
	"os"

	"repro/internal/colblob"
)

// sniffJournalFile identifies the codec of an existing journal file, or
// returns nil for a missing/empty file (no format committed yet).
func sniffJournalFile(path string) (JournalCodec, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.Read(b[:]); err != nil {
		if err == io.EOF {
			return nil, nil
		}
		return nil, err
	}
	return SniffCodec(b[0]), nil
}

// repairJournalFile fixes the torn tail a killed run leaves behind, in
// the file's own format: a JSONL file ending mid-line gets a newline so
// appended records start fresh; a binary file with a truncated or
// corrupt tail is truncated back to the end of its last valid record
// (frames are not line-oriented, so the JSONL trick of writing a
// separator cannot resynchronize a binary stream). Returns the detected
// codec — nil for a missing/empty file — and, for binary journals, the
// compression state at the repaired end, which a writer appending to the
// file must resume from (binary records chain on their predecessors).
func repairJournalFile(path string) (JournalCodec, binState, error) {
	codec, err := sniffJournalFile(path)
	if err != nil || codec == nil {
		return nil, binState{}, err
	}
	switch codec.Name() {
	case "jsonl":
		if !journalEndsMidLine(path) {
			return codec, binState{}, nil
		}
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return codec, binState{}, err
		}
		defer f.Close()
		if _, err := f.WriteString("\n"); err != nil {
			return codec, binState{}, err
		}
	case "binary":
		end, torn, st, err := scanBinaryJournal(path)
		if err != nil {
			return codec, binState{}, err
		}
		if torn {
			if err := os.Truncate(path, end); err != nil {
				return codec, st, err
			}
		}
		return codec, st, nil
	}
	return codec, binState{}, nil
}

// scanBinaryJournal replays a binary journal and returns the byte offset
// just past its last valid record, whether anything unusable (a torn
// tail) follows that offset, and the codec state at that point. A frame
// whose checksum passes but whose payload does not decode counts as torn
// too: records chain, so nothing past it can be appended to coherently.
func scanBinaryJournal(path string) (end int64, torn bool, st binState, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, false, st, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return 0, false, st, err
	}
	cr := &countingReader{r: f}
	fr := colblob.NewFrameReader(cr)
	var dec BinaryRecordDecoder
	for {
		kind, payload, ferr := fr.Next()
		if ferr == io.EOF {
			return end, end < fi.Size(), st, nil
		}
		if ferr != nil {
			return end, true, st, nil
		}
		if kind == colblob.FrameRecord {
			if _, derr := dec.Decode(payload); derr != nil {
				// A failed decode may have half-mutated dec; st still
				// holds the state as of the last good record.
				return end, true, st, nil
			}
		}
		// The frame decoded; NewFrameReader buffers ahead, so compute the
		// consumed offset as the reader position minus what is still
		// buffered.
		end = cr.n - int64(fr.Buffered())
		st = dec.st
	}
}

// countingReader counts bytes handed to the frame reader's buffer.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// journalEndsMidLine reports whether the journal at path ends without a
// trailing newline — the torn final record a killed JSONL run leaves
// behind.
func journalEndsMidLine(path string) bool {
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil || st.Size() == 0 {
		return false
	}
	var b [1]byte
	if _, err := f.ReadAt(b[:], st.Size()-1); err != nil {
		return false
	}
	return b[0] != '\n'
}

// OpenJournal opens (creating if absent) the journal at path for
// appending, repairing any torn final record a killed run left behind.
// codec selects the encoding for a new journal (nil means the binary
// default); an existing non-empty journal keeps its own sniffed format
// regardless, so resume runs never interleave encodings in one file.
// The caller must invoke close when done with the journal.
func OpenJournal(path string, codec JournalCodec) (j *Journal, close func() error, err error) {
	if codec == nil {
		codec = Binary
	}
	detected, st, err := repairJournalFile(path)
	if err != nil {
		return nil, nil, fmt.Errorf("clarinet: repair torn journal %s: %w", path, err)
	}
	if detected != nil {
		codec = detected
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("clarinet: open journal: %w", err)
	}
	if codec.Name() == "binary" {
		// Appended binary records chain on the file's existing tail:
		// resume the encoder from the replayed compression state.
		rw := &binaryWriter{w: f, enc: BinaryRecordEncoder{st: st}}
		return &Journal{rw: rw, codec: codec}, f.Close, nil
	}
	return NewJournalWith(f, codec), f.Close, nil
}

// ReadJournalFile loads the journal at path (either codec, sniffed) as
// prior reports for a resumed batch. A missing file is not an error: it
// returns an empty map, the natural state of a first run.
func ReadJournalFile(path string) (map[string]NetReport, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return map[string]NetReport{}, nil
		}
		return nil, fmt.Errorf("clarinet: open resume journal: %w", err)
	}
	defer f.Close()
	return ReadJournal(f)
}
