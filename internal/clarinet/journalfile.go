package clarinet

import (
	"fmt"
	"os"
)

// journalEndsMidLine reports whether the journal at path ends without a
// trailing newline — the torn final record a killed run leaves behind.
func journalEndsMidLine(path string) bool {
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil || st.Size() == 0 {
		return false
	}
	var b [1]byte
	if _, err := f.ReadAt(b[:], st.Size()-1); err != nil {
		return false
	}
	return b[0] != '\n'
}

// OpenJournal opens (creating if absent) the journal at path for
// appending, repairing the torn final record a killed run leaves
// behind: if the file ends mid-line, a newline is written first so
// appended records start fresh instead of merging into the torn one.
// The caller must invoke close when done with the journal.
func OpenJournal(path string) (j *Journal, close func() error, err error) {
	torn := journalEndsMidLine(path)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("clarinet: open journal: %w", err)
	}
	if torn {
		if _, err := f.WriteString("\n"); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("clarinet: repair torn journal %s: %w", path, err)
		}
	}
	return NewJournal(f), f.Close, nil
}

// ReadJournalFile loads the journal at path as prior reports for a
// resumed batch. A missing file is not an error: it returns an empty
// map, the natural state of a first run.
func ReadJournalFile(path string) (map[string]NetReport, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return map[string]NetReport{}, nil
		}
		return nil, fmt.Errorf("clarinet: open resume journal: %w", err)
	}
	defer f.Close()
	return ReadJournal(f)
}
