package clarinet

import (
	"context"
	"sync"
	"time"

	"repro/internal/delaynoise"
	"repro/internal/funcnoise"
)

// AnalyzeNet runs one net. A canceled context fails fast; an in-flight
// analysis is not interrupted.
func (t *Tool) AnalyzeNet(ctx context.Context, name string, c *delaynoise.Case) NetReport {
	if err := ctx.Err(); err != nil {
		return NetReport{Name: name, Err: err}
	}
	start := time.Now()
	opt := t.analysisOptions()
	if opt.Align == delaynoise.AlignPrechar {
		tab, err := t.tableFor(c.Receiver, c.Victim.OutputRising)
		if err != nil {
			t.metrics.Counter("nets.analyzed").Inc()
			t.metrics.Counter("nets.failed").Inc()
			return NetReport{Name: name, Err: err}
		}
		opt.Table = tab
	}
	res, err := delaynoise.Analyze(c, opt)
	t.metrics.Observe("net.analyze", time.Since(start))
	t.metrics.Counter("nets.analyzed").Inc()
	if err != nil {
		t.metrics.Counter("nets.failed").Inc()
	}
	return NetReport{Name: name, Res: res, Err: err}
}

// fanOut spreads f over every index i in [0, n) across the given number
// of worker goroutines. Each index is handed to f exactly once; emit
// receives (i, f(i)) from worker goroutines and must be safe for
// concurrent use across distinct indices. Cancellation is f's job:
// the per-net workers check their context before starting real work, so
// a canceled batch drains quickly but still emits every index.
func fanOut[R any](workers, n int, f func(int) R, emit func(int, R)) {
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				emit(i, f(i))
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
}

// checkBatch validates the batch invariants shared by every entry point.
func checkBatch(names []string, cases []*delaynoise.Case) {
	if len(names) != len(cases) {
		panic("clarinet: names and cases length mismatch")
	}
}

// AnalyzeAll runs every net, preserving input order, with bounded
// parallelism.
func (t *Tool) AnalyzeAll(names []string, cases []*delaynoise.Case) []NetReport {
	return t.AnalyzeAllContext(context.Background(), names, cases)
}

// AnalyzeAllContext is AnalyzeAll with cancellation/deadline support.
// The returned slice is always fully populated in input order: nets not
// started when the context fires carry the context's error, and
// in-flight nets run to completion. The report order is deterministic
// regardless of worker count or completion order.
func (t *Tool) AnalyzeAllContext(ctx context.Context, names []string, cases []*delaynoise.Case) []NetReport {
	checkBatch(names, cases)
	reports := make([]NetReport, len(cases))
	fanOut(t.Cfg.Workers, len(cases),
		func(i int) NetReport { return t.AnalyzeNet(ctx, names[i], cases[i]) },
		func(i int, r NetReport) { reports[i] = r })
	return reports
}

// Stream runs every net and delivers reports in completion order on the
// returned channel, which is closed once the batch finishes. Use this
// for progress display or incremental consumers; use AnalyzeAllContext
// when input-ordered results matter. Cancellation drains the remaining
// nets as error reports, so exactly len(cases) reports are always
// delivered.
func (t *Tool) Stream(ctx context.Context, names []string, cases []*delaynoise.Case) <-chan NetReport {
	checkBatch(names, cases)
	out := make(chan NetReport)
	go func() {
		defer close(out)
		fanOut(t.Cfg.Workers, len(cases),
			func(i int) NetReport { return t.AnalyzeNet(ctx, names[i], cases[i]) },
			func(_ int, r NetReport) { out <- r })
	}()
	return out
}

// FuncReport is the per-net outcome of a functional-noise run.
type FuncReport struct {
	Name string
	Res  *funcnoise.Result
	Err  error
}

// FunctionalAll runs the functional-noise flow on every net.
func (t *Tool) FunctionalAll(names []string, cases []*delaynoise.Case, opt funcnoise.Options) []FuncReport {
	return t.FunctionalAllContext(context.Background(), names, cases, opt)
}

// FunctionalAllContext is FunctionalAll with cancellation/deadline
// support, with the same ordering and drain guarantees as
// AnalyzeAllContext.
func (t *Tool) FunctionalAllContext(ctx context.Context, names []string, cases []*delaynoise.Case, opt funcnoise.Options) []FuncReport {
	checkBatch(names, cases)
	reports := make([]FuncReport, len(cases))
	fanOut(t.Cfg.Workers, len(cases),
		func(i int) FuncReport {
			if err := ctx.Err(); err != nil {
				return FuncReport{Name: names[i], Err: err}
			}
			start := time.Now()
			res, err := funcnoise.Analyze(cases[i], opt)
			t.metrics.Observe("net.functional", time.Since(start))
			t.metrics.Counter("nets.analyzed").Inc()
			if err != nil {
				t.metrics.Counter("nets.failed").Inc()
			}
			return FuncReport{Name: names[i], Res: res, Err: err}
		},
		func(i int, r FuncReport) { reports[i] = r })
	return reports
}
