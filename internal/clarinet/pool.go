package clarinet

import (
	"context"
	"errors"
	"sync"
	"time"

	"repro/internal/delaynoise"
	"repro/internal/funcnoise"
	"repro/internal/noiseerr"
)

// analyze and analyzeFunc are seams for tests that need to observe or
// fail per-net analyses without building pathological circuits.
var (
	analyze     = delaynoise.AnalyzeContext
	analyzeFunc = funcnoise.AnalyzeContext
)

// AnalyzeNet runs one net. A canceled context fails fast; an in-flight
// analysis is interrupted at the next solver checkpoint (see
// lsim.CtxCheckInterval and nlsim.CtxCheckInterval). Every error is
// attributed to the net and its pipeline stage via noiseerr.StageError.
func (t *Tool) AnalyzeNet(ctx context.Context, name string, c *delaynoise.Case) NetReport {
	if err := ctx.Err(); err != nil {
		return NetReport{Name: name, Err: noiseerr.WithNet(name, noiseerr.Canceled(err))}
	}
	start := time.Now()
	m := t.session.Metrics()
	opt := t.analysisOptions()
	if opt.Align == delaynoise.AlignPrechar && opt.Table == nil {
		tab, err := t.session.Table(ctx, c.Receiver, c.Victim.OutputRising)
		if err != nil {
			m.Counter("nets.analyzed").Inc()
			m.Counter("nets.failed").Inc()
			return NetReport{Name: name, Err: noiseerr.WithNet(name, err)}
		}
		opt.Table = tab
	}
	res, err := analyze(ctx, c, opt)
	if err != nil && t.Cfg.FallbackToPrechar && opt.Align == delaynoise.AlignExhaustive &&
		errors.Is(err, noiseerr.ErrConvergence) && ctx.Err() == nil {
		// Graceful degradation: the exhaustive search found no output
		// crossing; retry with the table-driven alignment, which places
		// the pulse without searching.
		if tab, terr := t.session.Table(ctx, c.Receiver, c.Victim.OutputRising); terr == nil {
			fopt := opt
			fopt.Align = delaynoise.AlignPrechar
			fopt.Table = tab
			if fres, ferr := analyze(ctx, c, fopt); ferr == nil {
				m.Counter("nets.fallback").Inc()
				res, err = fres, nil
			}
		}
	}
	m.Observe("net.analyze", time.Since(start))
	m.Counter("nets.analyzed").Inc()
	if err != nil {
		m.Counter("nets.failed").Inc()
		err = noiseerr.WithNet(name, err)
	}
	return NetReport{Name: name, Res: res, Err: err}
}

// fanOut spreads f over every index i in [0, n) across the given number
// of worker goroutines. Each index is handed to f exactly once; emit
// receives (i, f(i)) from worker goroutines and must be safe for
// concurrent use across distinct indices. Cancellation is f's job:
// the per-net workers check their context before starting real work and
// at solver checkpoints within it, so a canceled batch drains quickly
// but still emits every index.
func fanOut[R any](workers, n int, f func(int) R, emit func(int, R)) {
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				emit(i, f(i))
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
}

// checkBatch validates the batch invariants shared by every entry point.
func checkBatch(names []string, cases []*delaynoise.Case) {
	if len(names) != len(cases) {
		panic("clarinet: names and cases length mismatch")
	}
}

// AnalyzeAll runs every net, preserving input order, with bounded
// parallelism.
func (t *Tool) AnalyzeAll(names []string, cases []*delaynoise.Case) []NetReport {
	return t.AnalyzeAllContext(context.Background(), names, cases)
}

// AnalyzeAllContext is AnalyzeAll with cancellation/deadline support.
// The returned slice is always fully populated in input order: nets not
// started when the context fires carry the context's error, and
// in-flight nets abort at the next solver checkpoint. The report order
// is deterministic regardless of worker count or completion order.
func (t *Tool) AnalyzeAllContext(ctx context.Context, names []string, cases []*delaynoise.Case) []NetReport {
	checkBatch(names, cases)
	reports := make([]NetReport, len(cases))
	fanOut(t.Cfg.Workers, len(cases),
		func(i int) NetReport { return t.AnalyzeNet(ctx, names[i], cases[i]) },
		func(i int, r NetReport) { reports[i] = r })
	return reports
}

// Stream runs every net and delivers reports in completion order on the
// returned channel, which is closed once the batch finishes. Use this
// for progress display or incremental consumers; use AnalyzeAllContext
// when input-ordered results matter. Cancellation drains the remaining
// nets as error reports, so exactly len(cases) reports are always
// delivered.
func (t *Tool) Stream(ctx context.Context, names []string, cases []*delaynoise.Case) <-chan NetReport {
	checkBatch(names, cases)
	out := make(chan NetReport)
	go func() {
		defer close(out)
		fanOut(t.Cfg.Workers, len(cases),
			func(i int) NetReport { return t.AnalyzeNet(ctx, names[i], cases[i]) },
			func(_ int, r NetReport) { out <- r })
	}()
	return out
}

// FuncReport is the per-net outcome of a functional-noise run.
type FuncReport struct {
	Name string
	Res  *funcnoise.Result
	Err  error
}

// FunctionalAll runs the functional-noise flow on every net.
func (t *Tool) FunctionalAll(names []string, cases []*delaynoise.Case, opt funcnoise.Options) []FuncReport {
	return t.FunctionalAllContext(context.Background(), names, cases, opt)
}

// FunctionalAllContext is FunctionalAll with cancellation/deadline
// support, with the same ordering and drain guarantees as
// AnalyzeAllContext.
func (t *Tool) FunctionalAllContext(ctx context.Context, names []string, cases []*delaynoise.Case, opt funcnoise.Options) []FuncReport {
	checkBatch(names, cases)
	m := t.session.Metrics()
	reports := make([]FuncReport, len(cases))
	fanOut(t.Cfg.Workers, len(cases),
		func(i int) FuncReport {
			if err := ctx.Err(); err != nil {
				return FuncReport{Name: names[i], Err: noiseerr.WithNet(names[i], noiseerr.Canceled(err))}
			}
			start := time.Now()
			res, err := analyzeFunc(ctx, cases[i], opt)
			m.Observe("net.functional", time.Since(start))
			m.Counter("nets.analyzed").Inc()
			if err != nil {
				m.Counter("nets.failed").Inc()
				err = noiseerr.WithNet(names[i], err)
			}
			return FuncReport{Name: names[i], Res: res, Err: err}
		},
		func(i int, r FuncReport) { reports[i] = r })
	return reports
}
