package clarinet

import (
	"context"
	"errors"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/delaynoise"
	"repro/internal/funcnoise"
	"repro/internal/noiseerr"
	"repro/internal/resilience"
)

// analyze and analyzeFunc are seams for tests that need to observe or
// fail per-net analyses without building pathological circuits
// (internal/faultinject wraps them for the chaos suite).
var (
	analyze      = delaynoise.AnalyzeContext
	analyzeQuiet = delaynoise.AnalyzeQuietContext
	analyzeFunc  = funcnoise.AnalyzeContext
)

// AnalyzeNet runs one net. A canceled context fails fast; an in-flight
// analysis is interrupted at the next solver checkpoint (see
// lsim.CtxCheckInterval and nlsim.CtxCheckInterval). Every error is
// attributed to the net and its pipeline stage via noiseerr.StageError.
//
// Resilience: when the configured policy sets a NetTimeout, the net
// runs under its own deadline and a budget overrun fails just that net
// with the noiseerr.ErrDeadline class (nets.deadline) while the batch
// continues. Convergence failures climb the policy's rescue ladder (see
// resilience.Policy); the report's Quality field records which rung
// produced the surviving result.
//
// Counters: a net aborted by the caller's context counts only in
// nets.canceled — never in nets.analyzed or nets.failed, so failure
// totals reflect real per-net outcomes, not how early the batch was
// killed.
func (t *Tool) AnalyzeNet(ctx context.Context, name string, c *delaynoise.Case) NetReport {
	return t.AnalyzeNetWindow(ctx, name, c, nil)
}

// AnalyzeNetWindow is AnalyzeNet with a switching-window constraint on
// the aggressor alignment: when win is non-nil the composite pulse peak
// is clamped to it (delaynoise.Options.Window). Path-level analysis
// uses this to thread the sta-style window/noise fixpoint through the
// pool; a nil window is exactly AnalyzeNet.
func (t *Tool) AnalyzeNetWindow(ctx context.Context, name string, c *delaynoise.Case, win *delaynoise.Window) NetReport {
	m := t.session.Metrics()
	if err := ctx.Err(); err != nil {
		m.Counter(mNetsCanceled).Inc()
		return NetReport{Name: name, Err: noiseerr.WithNet(name, noiseerr.Canceled(err))}
	}
	start := time.Now()
	pol := t.Cfg.policy()
	netCtx := resilience.WithNet(ctx, name)
	cancel := func() {}
	if pol.NetTimeout > 0 {
		netCtx, cancel = context.WithTimeout(netCtx, pol.NetTimeout)
	}
	defer cancel()

	opt := t.analysisOptions()
	if win != nil {
		opt.Window = win
	}
	quality := resilience.QualityExact
	var res *delaynoise.Result
	var err error
	if opt.Align == delaynoise.AlignPrechar && opt.Table == nil {
		tab, terr := t.session.Table(netCtx, c.Receiver, c.Victim.OutputRising)
		if terr != nil {
			err = terr
		} else {
			opt.Table = tab
		}
	}
	if err == nil {
		res, err = analyze(netCtx, c, opt)
	}
	if err != nil && noiseerr.Class(err) == noiseerr.ErrConvergence && netCtx.Err() == nil {
		res, quality, err = t.rescue(netCtx, c, opt, pol, err)
	}
	m.Observe(mNetAnalyze, time.Since(start))

	if err != nil {
		switch {
		case ctx.Err() != nil:
			// The caller gave up on the whole batch: not a per-net
			// failure, and not analyzed either.
			m.Counter(mNetsCanceled).Inc()
		case errors.Is(netCtx.Err(), context.DeadlineExceeded):
			// The net's own budget expired while the batch kept going.
			m.Counter(mNetsAnalyzed).Inc()
			m.Counter(mNetsDeadline).Inc()
			m.Counter(mNetsFailed).Inc()
			err = noiseerr.Reclass(noiseerr.ErrDeadline, err)
		default:
			m.Counter(mNetsAnalyzed).Inc()
			m.Counter(mNetsFailed).Inc()
		}
		return NetReport{Name: name, Err: noiseerr.WithNet(name, err)}
	}
	m.Counter(mNetsAnalyzed).Inc()
	switch quality {
	case resilience.QualityRescued:
		m.Counter(mNetsRescued).Inc()
	case resilience.QualityFallback:
		m.Counter(mNetsFallback).Inc()
	default:
		m.Counter(mNetsExact).Inc()
	}
	return NetReport{Name: name, Res: res, Quality: quality}
}

// AnalyzeQuietNet runs only the quiet half of one net's analysis
// (driver characterization, noiseless victim simulation, one nonlinear
// receiver simulation — delaynoise.AnalyzeQuietContext) under the same
// session caches, per-net deadline budget, and error attribution as
// AnalyzeNet. It deliberately does not touch the nets.* outcome
// counters — those partition full noise analyses — and has no rescue
// ladder: the quiet flow has no alignment search to fall back from, and
// its simulations are the ones every full analysis already survives.
// Path-level analysis uses it for the noiseless reference chain.
func (t *Tool) AnalyzeQuietNet(ctx context.Context, name string, c *delaynoise.Case) NetReport {
	if err := ctx.Err(); err != nil {
		return NetReport{Name: name, Err: noiseerr.WithNet(name, noiseerr.Canceled(err))}
	}
	m := t.session.Metrics()
	start := time.Now()
	pol := t.Cfg.policy()
	netCtx := resilience.WithNet(ctx, name)
	cancel := func() {}
	if pol.NetTimeout > 0 {
		netCtx, cancel = context.WithTimeout(netCtx, pol.NetTimeout)
	}
	defer cancel()
	res, err := analyzeQuiet(netCtx, c, t.analysisOptions())
	m.Observe(mNetQuiet, time.Since(start))
	if err != nil {
		if ctx.Err() == nil && errors.Is(netCtx.Err(), context.DeadlineExceeded) {
			err = noiseerr.Reclass(noiseerr.ErrDeadline, err)
		}
		return NetReport{Name: name, Err: noiseerr.WithNet(name, err)}
	}
	return NetReport{Name: name, Res: res, Quality: resilience.QualityExact}
}

// rescue climbs the policy's ladder after a convergence failure. Each
// solver rung re-runs the analysis with the rung's nlsim aids armed on
// the context; the prechar rung retries with table-driven alignment.
// Climbing stops on the first success, on any non-convergence error,
// or when the context dies (the caller maps the context's own error).
func (t *Tool) rescue(ctx context.Context, c *delaynoise.Case, opt delaynoise.Options, pol resilience.Policy, first error) (*delaynoise.Result, resilience.Quality, error) {
	err := first
	rungs := pol.Ladder()
	if len(rungs) == 0 {
		return nil, resilience.QualityExact, err
	}
	m := t.session.Metrics()
	start := time.Now()
	defer func() { m.Observe(noiseerr.StageRescue.TimerName(), time.Since(start)) }()
	for _, rung := range rungs {
		if ctx.Err() != nil {
			return nil, resilience.QualityExact, err
		}
		var res *delaynoise.Result
		var rerr error
		if rung.Prechar {
			if opt.Align == delaynoise.AlignPrechar {
				continue // the first pass was already table-driven
			}
			tab, terr := t.session.Table(ctx, c.Receiver, c.Victim.OutputRising)
			if terr != nil {
				continue // keep the original failure
			}
			fopt := opt
			fopt.Align = delaynoise.AlignPrechar
			fopt.Table = tab
			m.Counter(mRescueAttempts).Inc()
			m.Counter(mRescuePrefix + rung.Name).Inc()
			res, rerr = analyze(ctx, c, fopt)
		} else {
			m.Counter(mRescueAttempts).Inc()
			m.Counter(mRescuePrefix + rung.Name).Inc()
			res, rerr = analyze(resilience.WithSolverRescue(ctx, rung.Solver), c, opt)
		}
		if rerr == nil {
			return res, rung.Quality(), nil
		}
		err = rerr
		if noiseerr.Class(rerr) != noiseerr.ErrConvergence {
			break // numerical/canceled failures do not climb further
		}
	}
	return nil, resilience.QualityExact, err
}

// panicReport converts a recovered worker panic into a failed report:
// the batch continues, the net counts in nets.panicked (and failed),
// and the error chain carries the panic value, stack, and net name
// under the noiseerr.ErrInternal class.
func (t *Tool) panicReport(name string, p *noiseerr.PanicError) NetReport {
	m := t.session.Metrics()
	m.Counter(mNetsAnalyzed).Inc()
	m.Counter(mNetsPanicked).Inc()
	m.Counter(mNetsFailed).Inc()
	return NetReport{Name: name, Err: noiseerr.WithNet(name, noiseerr.InStage(noiseerr.StageResilience, p))}
}

// funcPanicReport is panicReport for the functional-noise flow.
func (t *Tool) funcPanicReport(name string, p *noiseerr.PanicError) FuncReport {
	m := t.session.Metrics()
	m.Counter(mNetsAnalyzed).Inc()
	m.Counter(mNetsPanicked).Inc()
	m.Counter(mNetsFailed).Inc()
	return FuncReport{Name: name, Err: noiseerr.WithNet(name, noiseerr.InStage(noiseerr.StageResilience, p))}
}

// fanOut spreads f over every index i in [0, n) across the given number
// of worker goroutines. Each index is handed to f exactly once; emit
// receives (i, f(i)) from worker goroutines and must be safe for
// concurrent use across distinct indices. Cancellation is f's job:
// the per-net workers check their context before starting real work and
// at solver checkpoints within it, so a canceled batch drains quickly
// but still emits every index.
//
// contain, when non-nil, converts a panic out of f(i) into a result so
// one poisoned net cannot sink the batch or wedge the pool (an
// unrecovered worker panic would kill the process; a swallowed one
// would deadlock Wait). A nil contain lets panics propagate.
func fanOut[R any](workers, n int, f func(int) R, emit func(int, R), contain func(int, *noiseerr.PanicError) R) {
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	run := f
	if contain != nil {
		run = func(i int) (r R) {
			defer func() {
				if p := recover(); p != nil {
					r = contain(i, &noiseerr.PanicError{Value: p, Stack: debug.Stack()})
				}
			}()
			return f(i)
		}
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				emit(i, run(i))
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
}

// checkBatch validates the batch invariants shared by every entry point.
func checkBatch(names []string, cases []*delaynoise.Case) {
	if len(names) != len(cases) {
		panic("clarinet: names and cases length mismatch")
	}
}

// AnalyzeAll runs every net, preserving input order, with bounded
// parallelism.
func (t *Tool) AnalyzeAll(names []string, cases []*delaynoise.Case) []NetReport {
	return t.AnalyzeAllContext(context.Background(), names, cases)
}

// AnalyzeAllContext is AnalyzeAll with cancellation/deadline support.
// The returned slice is always fully populated in input order: nets not
// started when the context fires carry the context's error, and
// in-flight nets abort at the next solver checkpoint. The report order
// is deterministic regardless of worker count or completion order.
func (t *Tool) AnalyzeAllContext(ctx context.Context, names []string, cases []*delaynoise.Case) []NetReport {
	return t.AnalyzeBatch(ctx, names, cases, nil, nil)
}

// AnalyzeBatch is AnalyzeAllContext with checkpoint/resume support.
// Nets found in prior (keyed by name, e.g. from ReadJournal) are
// returned as-is without re-analysis and counted in nets.resumed; every
// freshly completed report is appended to j as it lands (nil disables
// journaling). Worker panics are contained: the poisoned net reports a
// noiseerr.ErrInternal-class failure carrying the stack, counts in
// nets.panicked, and the rest of the batch proceeds.
func (t *Tool) AnalyzeBatch(ctx context.Context, names []string, cases []*delaynoise.Case, prior map[string]NetReport, j *Journal) []NetReport {
	checkBatch(names, cases)
	m := t.session.Metrics()
	reports := make([]NetReport, len(cases))
	var pending []int
	for i, name := range names {
		if r, ok := prior[name]; ok {
			r.Name = name
			reports[i] = r
			m.Counter(mNetsResumed).Inc()
			continue
		}
		pending = append(pending, i)
	}
	fanOut(t.Cfg.Workers, len(pending),
		func(k int) NetReport { return t.AnalyzeNet(ctx, names[pending[k]], cases[pending[k]]) },
		func(k int, r NetReport) {
			reports[pending[k]] = r
			j.Record(r)
		},
		func(k int, p *noiseerr.PanicError) NetReport { return t.panicReport(names[pending[k]], p) })
	return reports
}

// Stream runs every net and delivers reports in completion order on the
// returned channel, which is closed once the batch finishes. Use this
// for progress display or incremental consumers; use AnalyzeAllContext
// when input-ordered results matter. Cancellation drains the remaining
// nets as error reports, so exactly len(cases) reports are always
// delivered. Worker panics are contained as in AnalyzeBatch.
func (t *Tool) Stream(ctx context.Context, names []string, cases []*delaynoise.Case) <-chan NetReport {
	return t.StreamBatch(ctx, names, cases, nil, nil)
}

// StreamBatch is Stream with the checkpoint/resume semantics of
// AnalyzeBatch: nets found in prior are delivered first, as-is, without
// re-analysis (counted in nets.resumed), then the remaining nets stream
// in completion order; every freshly completed report is appended to j
// as it lands (nil disables journaling). The noised serving layer is
// built on this: one request's NDJSON stream is exactly this channel,
// and a resumed request replays its journal before analyzing the rest.
// Exactly len(cases) reports are always delivered; the caller must
// drain the channel.
func (t *Tool) StreamBatch(ctx context.Context, names []string, cases []*delaynoise.Case, prior map[string]NetReport, j *Journal) <-chan NetReport {
	checkBatch(names, cases)
	m := t.session.Metrics()
	var resumed []NetReport
	var pending []int
	for i, name := range names {
		if r, ok := prior[name]; ok {
			r.Name = name
			resumed = append(resumed, r)
			m.Counter(mNetsResumed).Inc()
			continue
		}
		pending = append(pending, i)
	}
	out := make(chan NetReport)
	go func() {
		defer close(out)
		for _, r := range resumed {
			// The doc contract above bounds this goroutine: exactly
			// len(cases) reports are delivered and the caller must drain,
			// so every send completes.
			//lint:ignore noiselint/goleak the caller-must-drain contract (doc comment) bounds the sends
			out <- r
		}
		fanOut(t.Cfg.Workers, len(pending),
			func(k int) NetReport { return t.AnalyzeNet(ctx, names[pending[k]], cases[pending[k]]) },
			func(_ int, r NetReport) {
				j.Record(r)
				out <- r
			},
			func(k int, p *noiseerr.PanicError) NetReport { return t.panicReport(names[pending[k]], p) })
	}()
	return out
}

// FuncReport is the per-net outcome of a functional-noise run.
type FuncReport struct {
	Name string
	Res  *funcnoise.Result
	Err  error
}

// FunctionalAll runs the functional-noise flow on every net.
func (t *Tool) FunctionalAll(names []string, cases []*delaynoise.Case, opt funcnoise.Options) []FuncReport {
	return t.FunctionalAllContext(context.Background(), names, cases, opt)
}

// FunctionalAllContext is FunctionalAll with cancellation/deadline
// support, with the same ordering, drain, cancellation-counting, and
// panic-containment guarantees as AnalyzeBatch.
func (t *Tool) FunctionalAllContext(ctx context.Context, names []string, cases []*delaynoise.Case, opt funcnoise.Options) []FuncReport {
	checkBatch(names, cases)
	m := t.session.Metrics()
	reports := make([]FuncReport, len(cases))
	fanOut(t.Cfg.Workers, len(cases),
		func(i int) FuncReport {
			if err := ctx.Err(); err != nil {
				m.Counter(mNetsCanceled).Inc()
				return FuncReport{Name: names[i], Err: noiseerr.WithNet(names[i], noiseerr.Canceled(err))}
			}
			start := time.Now()
			res, err := analyzeFunc(ctx, cases[i], opt)
			m.Observe(mNetFunctional, time.Since(start))
			if err != nil {
				if ctx.Err() != nil {
					m.Counter(mNetsCanceled).Inc()
				} else {
					m.Counter(mNetsAnalyzed).Inc()
					m.Counter(mNetsFailed).Inc()
				}
				return FuncReport{Name: names[i], Err: noiseerr.WithNet(names[i], err)}
			}
			m.Counter(mNetsAnalyzed).Inc()
			return FuncReport{Name: names[i], Res: res}
		},
		func(i int, r FuncReport) { reports[i] = r },
		func(i int, p *noiseerr.PanicError) FuncReport { return t.funcPanicReport(names[i], p) })
	return reports
}
