package clarinet

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/colblob"
	"repro/internal/noiseerr"
)

// JournalCodec is the serialization behind the batch journal and the
// noised result wire: one encoding of a JournalRecord stream. Two
// codecs exist — the compact binary default (colblob frames) and JSONL
// as a human-readable debug view (-journal-format=jsonl). Both
// round-trip float64 bit-exactly, so a resumed report renders
// byte-identically regardless of codec.
type JournalCodec interface {
	// Name is the codec's flag/config name ("binary", "jsonl").
	Name() string
	// ContentType is the codec's HTTP media type on the noised wire.
	ContentType() string
	// NewWriter starts an encoded record stream on w. Writers are
	// single-stream and not concurrency-safe (Journal adds the mutex);
	// the binary writer carries cross-record compression state, so one
	// writer must serve one stream from its beginning (or be primed by
	// replaying the stream's existing records — OpenJournal does).
	NewWriter(w io.Writer) RecordWriter
	// NewReader decodes a stream written with NewWriter.
	NewReader(r io.Reader) RecordReader
}

// RecordWriter appends records to one encoded stream.
type RecordWriter interface {
	WriteRecord(rec JournalRecord) error
}

// RecordReader iterates a journal/wire stream. Next returns io.EOF at a
// clean end, ErrBadRecord for a record that should be skipped (a
// malformed JSONL line), and colblob.ErrTorn for the truncated tail a
// killed binary writer leaves behind (the reader is exhausted after it —
// binary records chain on their predecessors, so nothing after a broken
// frame can decode).
type RecordReader interface {
	Next() (JournalRecord, error)
}

// ErrBadRecord marks one undecodable record in an otherwise readable
// stream; readers skip it and continue.
var ErrBadRecord = errors.New("clarinet: bad journal record")

// Wire content types for the analyze stream.
const (
	ContentTypeNDJSON  = "application/x-ndjson"
	ContentTypeColblob = "application/x-noise-colblob"
)

// The two codecs. Binary is the journal default; JSONL is the debug
// view and the legacy wire format.
var (
	Binary JournalCodec = binaryCodec{}
	JSONL  JournalCodec = jsonlCodec{}
)

// CodecByName resolves a -journal-format flag value. Empty means the
// binary default.
func CodecByName(name string) (JournalCodec, error) {
	switch name {
	case "", "binary":
		return Binary, nil
	case "jsonl", "json":
		return JSONL, nil
	default:
		return nil, noiseerr.Invalidf("clarinet: unknown journal format %q (want binary or jsonl)", name)
	}
}

// SniffCodec identifies the codec of an existing stream from its first
// byte: binary frames open with colblob.FrameMagic (0xCB, outside
// ASCII), JSONL lines with '{'.
func SniffCodec(first byte) JournalCodec {
	if first == colblob.FrameMagic {
		return Binary
	}
	return JSONL
}

// --- JSONL ------------------------------------------------------------

type jsonlCodec struct{}

func (jsonlCodec) Name() string        { return "jsonl" }
func (jsonlCodec) ContentType() string { return ContentTypeNDJSON }

func (jsonlCodec) NewWriter(w io.Writer) RecordWriter { return &jsonlWriter{w: w} }

type jsonlWriter struct {
	w   io.Writer
	buf []byte
}

func (jw *jsonlWriter) WriteRecord(rec JournalRecord) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	jw.buf = append(jw.buf[:0], line...)
	jw.buf = append(jw.buf, '\n')
	_, err = jw.w.Write(jw.buf)
	return err
}

func (jsonlCodec) NewReader(r io.Reader) RecordReader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	return &jsonlReader{sc: sc}
}

type jsonlReader struct{ sc *bufio.Scanner }

func (jr *jsonlReader) Next() (JournalRecord, error) {
	for jr.sc.Scan() {
		line := jr.sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec JournalRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			// A malformed line — including the torn final line of a
			// killed run — is skippable, not fatal.
			return JournalRecord{}, ErrBadRecord
		}
		return rec, nil
	}
	if err := jr.sc.Err(); err != nil {
		return JournalRecord{}, err
	}
	return JournalRecord{}, io.EOF
}

// --- binary -----------------------------------------------------------
//
// One record is one colblob frame (magic, kind, length, payload,
// checksum — see colblob/frame.go). The payload chains on the records
// before it in the same stream, spending bytes only where a record
// carries information its predecessors did not:
//
//	uvarint  shared-prefix length with the previous record's net name
//	string   net name suffix
//	byte     flags — the whole header of the common case:
//	           bits 0-1  quality ("", exact, rescued; 3 = extended,
//	                     an enum byte follows: index into qualityEnum,
//	                     0xFF = escape + uvarint-length string)
//	           bit 2     class present (enum byte follows, classEnum)
//	           bit 3     error message present (string follows)
//	           bit 4     result present
//	           bits 5-7  iterations (7 = escape, uvarint follows)
//	if a result is present, one LSB-first bit stream:
//	  for each float field except noisyCombinedDelay:
//	    4-bit zigzag delta of the sign+exponent word (top 12 bits of the
//	    IEEE-754 pattern) against the same field of the previous
//	    result-bearing record; delta 15 escapes to a raw 12-bit word
//	    52-bit raw mantissa
//	  noisyCombinedDelay: 1 bit "equals quiet+delayNoise exactly"
//	    (the definitionally common case); 0 escapes to 64 raw bits
//
// Mantissas are full-precision solver output — incompressible 52-bit
// entropy — so the format packs them bare and compresses everything
// around them: exponents repeat per field across nets (~1 nibble),
// names share batch prefixes, and enum strings collapse to a byte.
// Everything decodes bit-exactly.
//
// The chaining means a binary stream must be read strictly from the
// start, and a writer appending to an existing stream must first replay
// it to recover the compression state (OpenJournal does both).

const (
	enumEscape = 0xFF
	// noisyField is the index of NoisyCombinedDelay in resultFields.
	noisyField = 7

	// flags-byte layout.
	flagQualityExt = 3 // bits 0-1: inline quality; 3 = enum byte follows
	flagClass      = 1 << 2
	flagError      = 1 << 3
	flagResult     = 1 << 4
	flagItersShift = 5
	flagItersEsc   = 7 // bits 5-7: inline iterations; 7 = uvarint follows
)

// qualityEnum and classEnum pin the closed vocabularies the binary
// codec compresses to one byte. Appending is format-compatible;
// reordering or removing is not (TestBinaryEnumsPinned guards).
var (
	qualityEnum = []string{"", "exact", "rescued", "fallback"}
	classEnum   = []string{"", "invalid-case", "convergence", "numerical",
		"canceled", "deadline", "internal", "unclassified"}
)

// resultFields flattens a JournalResult's floats in wire order.
func resultFields(res *JournalResult) [10]float64 {
	return [10]float64{
		res.VictimCeff, res.VictimRth, res.VictimRtr,
		res.PulseHeight, res.PulseWidth, res.TPeak,
		res.QuietCombinedDelay, res.NoisyCombinedDelay,
		res.DelayNoise, res.InterconnectDelayNoise,
	}
}

func setResultFields(res *JournalResult, f [10]float64) {
	res.VictimCeff, res.VictimRth, res.VictimRtr = f[0], f[1], f[2]
	res.PulseHeight, res.PulseWidth, res.TPeak = f[3], f[4], f[5]
	res.QuietCombinedDelay, res.NoisyCombinedDelay = f[6], f[7]
	res.DelayNoise, res.InterconnectDelayNoise = f[8], f[9]
}

// binState is the cross-record compression state an encoder and its
// decoder evolve in lockstep: the previous record's net name (every
// record) and the per-field sign+exponent words of the previous
// result-bearing record.
type binState struct {
	prevName string
	prevExp  [10]uint16
}

// BinaryRecordEncoder encodes one binary record stream's payloads (the
// journal and wire writers wrap it in frames). Not concurrency-safe.
type BinaryRecordEncoder struct{ st binState }

// Append appends rec's payload (unframed) to dst.
func (e *BinaryRecordEncoder) Append(dst []byte, rec JournalRecord) []byte {
	prefix := sharedPrefix(e.st.prevName, rec.Net)
	dst = colblob.AppendUvarint(dst, uint64(prefix))
	dst = colblob.AppendString(dst, rec.Net[prefix:])
	e.st.prevName = rec.Net

	var flags byte
	qInline := enumIndex(qualityEnum[:flagQualityExt], rec.Quality)
	if qInline >= 0 {
		flags = byte(qInline)
	} else {
		flags = flagQualityExt
	}
	if rec.Class != "" {
		flags |= flagClass
	}
	if rec.Error != "" {
		flags |= flagError
	}
	itEsc := false
	if rec.Result != nil {
		flags |= flagResult
		if it := rec.Result.Iterations; it >= 0 && it < int(flagItersEsc) {
			flags |= byte(it) << flagItersShift
		} else {
			flags |= flagItersEsc << flagItersShift
			itEsc = true
		}
	}
	dst = append(dst, flags)
	if qInline < 0 {
		dst = appendEnum(dst, qualityEnum, rec.Quality)
	}
	if rec.Class != "" {
		dst = appendEnum(dst, classEnum, rec.Class)
	}
	if rec.Error != "" {
		dst = colblob.AppendString(dst, rec.Error)
	}
	if rec.Result == nil {
		return dst
	}
	res := rec.Result
	if itEsc {
		dst = colblob.AppendUvarint(dst, uint64(int64(res.Iterations)))
	}
	fields := resultFields(res)
	bw := colblob.NewBitWriter(dst)
	for i, v := range fields {
		bits := math.Float64bits(v)
		if i == noisyField {
			if bits == math.Float64bits(res.QuietCombinedDelay+res.DelayNoise) {
				bw.WriteBits(1, 1)
			} else {
				bw.WriteBits(0, 1)
				bw.WriteBits(bits, 64)
			}
			continue
		}
		exp := uint16(bits >> 52)
		d := int64(exp) - int64(e.st.prevExp[i])
		e.st.prevExp[i] = exp
		if z := zigzag16(d); z < 15 {
			bw.WriteBits(uint64(z), 4)
		} else {
			bw.WriteBits(15, 4)
			bw.WriteBits(uint64(exp), 12)
		}
		bw.WriteBits(bits&((1<<52)-1), 52)
	}
	return bw.Bytes()
}

// BinaryRecordDecoder decodes payloads produced by a
// BinaryRecordEncoder, replaying its state transitions. A decode error
// leaves the state unusable: the stream cannot be resynchronized past
// it (callers stop, as ReadJournal does).
type BinaryRecordDecoder struct{ st binState }

// Decode parses one payload.
func (d *BinaryRecordDecoder) Decode(payload []byte) (JournalRecord, error) {
	var rec JournalRecord
	prefix, src, err := colblob.ReadUvarint(payload)
	if err != nil || prefix > uint64(len(d.st.prevName)) {
		return rec, errBadPayload
	}
	suffix, src, err := colblob.ReadString(src)
	if err != nil {
		return rec, errBadPayload
	}
	rec.Net = d.st.prevName[:prefix] + suffix
	d.st.prevName = rec.Net
	if len(src) < 1 {
		return rec, errBadPayload
	}
	flags := src[0]
	src = src[1:]
	if q := flags & flagQualityExt; q < flagQualityExt {
		rec.Quality = qualityEnum[q]
	} else if rec.Quality, src, err = readEnum(src, qualityEnum); err != nil {
		return rec, err
	}
	if flags&flagClass != 0 {
		if rec.Class, src, err = readEnum(src, classEnum); err != nil {
			return rec, err
		}
	}
	if flags&flagError != 0 {
		if rec.Error, src, err = colblob.ReadString(src); err != nil {
			return rec, errBadPayload
		}
	}
	if flags&flagResult == 0 {
		if len(src) != 0 {
			return rec, errBadPayload
		}
		return rec, nil
	}
	res := &JournalResult{}
	res.Iterations = int(flags >> flagItersShift)
	if res.Iterations == flagItersEsc {
		iters, rest, err := colblob.ReadUvarint(src)
		if err != nil {
			return rec, errBadPayload
		}
		res.Iterations, src = int(int64(iters)), rest
	}
	var fields [10]float64
	exactSum := false
	br := colblob.NewBitReader(src)
	for i := range fields {
		if i == noisyField {
			exact, err := br.ReadBits(1)
			if err != nil {
				return rec, errBadPayload
			}
			if exact == 1 {
				// Reconstructed after the loop, once quiet and noise
				// are both decoded.
				exactSum = true
				continue
			}
			raw, err := br.ReadBits(64)
			if err != nil {
				return rec, errBadPayload
			}
			fields[i] = math.Float64frombits(raw)
			continue
		}
		z, err := br.ReadBits(4)
		if err != nil {
			return rec, errBadPayload
		}
		var exp uint16
		if z == 15 {
			raw, err := br.ReadBits(12)
			if err != nil {
				return rec, errBadPayload
			}
			exp = uint16(raw)
		} else {
			exp = uint16(int64(d.st.prevExp[i]) + unzigzag16(uint16(z)))
		}
		d.st.prevExp[i] = exp
		man, err := br.ReadBits(52)
		if err != nil {
			return rec, errBadPayload
		}
		fields[i] = math.Float64frombits(uint64(exp)<<52 | man)
	}
	if exactSum {
		// fields[6] is QuietCombinedDelay, fields[8] DelayNoise: both
		// decoded by now, so the flagged identity reconstructs bit-exactly.
		fields[noisyField] = fields[6] + fields[8]
	}
	setResultFields(res, fields)
	rec.Result = res
	return rec, nil
}

var errBadPayload = fmt.Errorf("%w: binary record payload", colblob.ErrTorn)

// sharedPrefix is the byte length of the common prefix of a and b.
func sharedPrefix(a, b string) int {
	n := 0
	for n < len(a) && n < len(b) && a[n] == b[n] {
		n++
	}
	return n
}

// enumIndex returns s's index in vocab, or -1 for a value outside it.
func enumIndex(vocab []string, s string) int {
	for i, v := range vocab {
		if v == s {
			return i
		}
	}
	return -1
}

// appendEnum writes s as its index in vocab, or the escape byte and the
// literal string for values outside the vocabulary.
func appendEnum(dst []byte, vocab []string, s string) []byte {
	if i := enumIndex(vocab, s); i >= 0 {
		return append(dst, byte(i))
	}
	dst = append(dst, enumEscape)
	return colblob.AppendString(dst, s)
}

func readEnum(src []byte, vocab []string) (string, []byte, error) {
	if len(src) < 1 {
		return "", src, errBadPayload
	}
	b := src[0]
	src = src[1:]
	if b == enumEscape {
		s, rest, err := colblob.ReadString(src)
		if err != nil {
			return "", src, errBadPayload
		}
		return s, rest, nil
	}
	if int(b) >= len(vocab) {
		return "", src, errBadPayload
	}
	return vocab[b], src, nil
}

func zigzag16(v int64) uint16   { return uint16((v << 1) ^ (v >> 63)) }
func unzigzag16(u uint16) int64 { return int64(u>>1) ^ -int64(u&1) }

type binaryCodec struct{}

func (binaryCodec) Name() string        { return "binary" }
func (binaryCodec) ContentType() string { return ContentTypeColblob }

func (binaryCodec) NewWriter(w io.Writer) RecordWriter { return &binaryWriter{w: w} }

type binaryWriter struct {
	w       io.Writer
	enc     BinaryRecordEncoder
	payload []byte
	frame   []byte
}

func (bw *binaryWriter) WriteRecord(rec JournalRecord) error {
	bw.payload = bw.enc.Append(bw.payload[:0], rec)
	bw.frame = colblob.AppendFrame(bw.frame[:0], colblob.FrameRecord, bw.payload)
	_, err := bw.w.Write(bw.frame)
	return err
}

func (binaryCodec) NewReader(r io.Reader) RecordReader {
	return &binaryReader{fr: colblob.NewFrameReader(r)}
}

type binaryReader struct {
	fr  *colblob.FrameReader
	dec BinaryRecordDecoder
}

func (br *binaryReader) Next() (JournalRecord, error) {
	for {
		kind, payload, err := br.fr.Next()
		if err != nil {
			return JournalRecord{}, err
		}
		if kind != colblob.FrameRecord {
			continue // unknown/summary frames extend the stream compatibly
		}
		rec, err := br.dec.Decode(payload)
		if err != nil {
			// The frame checksum passed but the payload does not parse.
			// Records chain, so nothing after this point can decode:
			// terminal, like a torn tail.
			return JournalRecord{}, err
		}
		return rec, nil
	}
}
