package clarinet

import (
	"fmt"
	"math"
	"os"
	"path/filepath"

	"testing"
)

// fuzzSeedRecords is the seed corpus for FuzzBinaryRecord: one record
// per encoder feature (dense result, error record, hostile floats, the
// exact-sum fast path and its escape, out-of-vocabulary enums, empty).
func fuzzSeedRecords() []JournalRecord {
	return []JournalRecord{
		{Net: "n1", Quality: "exact", Result: &JournalResult{
			VictimCeff: 1.25e-13, VictimRth: 812.5, VictimRtr: 633,
			PulseHeight: 0.41, PulseWidth: 3.5e-11, TPeak: 1.5e-10,
			QuietCombinedDelay: 2.25e-10, NoisyCombinedDelay: 2.5e-10,
			DelayNoise: 2.5e-11, InterconnectDelayNoise: 1e-12, Iterations: 6,
		}},
		{Net: "n2", Class: "numerical", Error: "nlsim: newton stalled"},
		{Net: "n3", Quality: "fallback", Result: &JournalResult{
			DelayNoise: math.Copysign(0, -1), TPeak: math.MaxFloat64,
			VictimCeff: math.SmallestNonzeroFloat64, Iterations: 9,
		}},
		{Net: "n3_sib", Quality: "exact", Result: &JournalResult{
			QuietCombinedDelay: 2e-10, DelayNoise: 3e-11,
			NoisyCombinedDelay: 2e-10 + 3e-11, Iterations: 2,
		}},
		{Net: "n4", Quality: "heroic", Class: "future-class", Error: "x"},
		{Net: ""},
	}
}

// FuzzBinaryRecord throws arbitrary payloads at a fresh
// BinaryRecordDecoder — the decoder's input is untrusted journal and
// wire bytes, so it must reject garbage with an error, never panic.
// Anything that decodes cleanly must survive a fresh
// encode/decode round trip bit-exactly.
func FuzzBinaryRecord(f *testing.F) {
	for _, rec := range fuzzSeedRecords() {
		var enc BinaryRecordEncoder
		f.Add(enc.Append(nil, rec))
	}
	// A chained second record too: fresh decoders will misread it, which
	// is exactly the hostile-input shape worth mutating from.
	var chain BinaryRecordEncoder
	first := chain.Append(nil, fuzzSeedRecords()[0])
	f.Add(chain.Append(nil, fuzzSeedRecords()[3])[len(first):])
	f.Fuzz(func(t *testing.T, payload []byte) {
		var dec BinaryRecordDecoder
		rec, err := dec.Decode(payload)
		if err != nil {
			return
		}
		var enc2 BinaryRecordEncoder
		var dec2 BinaryRecordDecoder
		back, err := dec2.Decode(enc2.Append(nil, rec))
		if err != nil {
			t.Fatalf("re-decode of decoded record failed: %v", err)
		}
		if !recordsBitEqual(back, rec) {
			t.Fatalf("round trip changed record:\n got %+v\nwant %+v", back, rec)
		}
	})
}

// recordsBitEqual compares two records with float fields judged by
// IEEE-754 bits: hostile payloads legally decode to NaN, and
// reflect.DeepEqual would call a bit-exact NaN round trip a failure.
func recordsBitEqual(a, b JournalRecord) bool {
	if a.Net != b.Net || a.Quality != b.Quality || a.Class != b.Class || a.Error != b.Error {
		return false
	}
	if (a.Result == nil) != (b.Result == nil) {
		return false
	}
	if a.Result == nil {
		return true
	}
	x, y := a.Result, b.Result
	if x.Iterations != y.Iterations {
		return false
	}
	xs := [...]float64{x.VictimCeff, x.VictimRth, x.VictimRtr, x.PulseHeight,
		x.PulseWidth, x.TPeak, x.QuietCombinedDelay, x.NoisyCombinedDelay,
		x.DelayNoise, x.InterconnectDelayNoise}
	ys := [...]float64{y.VictimCeff, y.VictimRth, y.VictimRtr, y.PulseHeight,
		y.PulseWidth, y.TPeak, y.QuietCombinedDelay, y.NoisyCombinedDelay,
		y.DelayNoise, y.InterconnectDelayNoise}
	for i := range xs {
		if math.Float64bits(xs[i]) != math.Float64bits(ys[i]) {
			return false
		}
	}
	return true
}

// TestGenBinaryFuzzCorpus regenerates the committed seed corpus under
// testdata/fuzz/FuzzBinaryRecord so CI fuzzing starts from valid
// payloads even before any -fuzz run. Run with
// CLARINET_GEN_FUZZ_CORPUS=1 after changing the binary format.
func TestGenBinaryFuzzCorpus(t *testing.T) {
	if os.Getenv("CLARINET_GEN_FUZZ_CORPUS") == "" {
		t.Skip("set CLARINET_GEN_FUZZ_CORPUS=1 to regenerate the committed corpus")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzBinaryRecord")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, rec := range fuzzSeedRecords() {
		var enc BinaryRecordEncoder
		payload := enc.Append(nil, rec)
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", payload)
		name := filepath.Join(dir, fmt.Sprintf("seed-%d", i))
		if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
