package clarinet

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/delaynoise"
	"repro/internal/noiseerr"
)

// stubAnalyze swaps the per-net analysis seam for the test's lifetime.
func stubAnalyze(t *testing.T, fn func(context.Context, *delaynoise.Case, delaynoise.Options) (*delaynoise.Result, error)) {
	t.Helper()
	orig := analyze
	analyze = fn
	t.Cleanup(func() { analyze = orig })
}

// TestCancellationMidSimulationBoundedAbort cancels the batch only once
// the first net is inside a solver loop: the in-flight net must abort at
// a bounded-step checkpoint and every failed report must classify as
// both context.Canceled and noiseerr.ErrCanceled, with net attribution.
func TestCancellationMidSimulationBoundedAbort(t *testing.T) {
	names, cases, lib := population(t, 3)
	tool := MustNew(lib, Config{
		Hold:    delaynoise.HoldTransient,
		Align:   delaynoise.AlignReceiverInput,
		Workers: 1,
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan []NetReport, 1)
	go func() { done <- tool.AnalyzeAllContext(ctx, names, cases) }()
	// Wait for the first net to reach a simulation, then fire.
	m := tool.Metrics()
	deadline := time.Now().Add(30 * time.Second)
	for m.Counter("sim.linear").Value() == 0 && m.Counter("sim.nonlinear.receiver").Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("batch never reached a simulation")
		}
		time.Sleep(50 * time.Microsecond)
	}
	cancel()
	reports := <-done

	canceled := 0
	for _, r := range reports {
		if r.Err == nil {
			continue // a net may have completed before the flip
		}
		if !errors.Is(r.Err, context.Canceled) {
			t.Fatalf("net %s: err = %v, want context.Canceled in chain", r.Name, r.Err)
		}
		if !errors.Is(r.Err, noiseerr.ErrCanceled) {
			t.Fatalf("net %s: err = %v, want noiseerr.ErrCanceled in chain", r.Name, r.Err)
		}
		var se *noiseerr.StageError
		if !errors.As(r.Err, &se) || se.Net != r.Name {
			t.Fatalf("net %s: error lacks net attribution: %v", r.Name, r.Err)
		}
		if noiseerr.ClassName(r.Err) != "canceled" {
			t.Fatalf("net %s: classified as %s", r.Name, noiseerr.ClassName(r.Err))
		}
		canceled++
	}
	if canceled == 0 {
		t.Fatal("no net observed the cancellation")
	}
}

// TestErrorTaxonomyThroughBatch pushes a classified stage error through
// the tool layer and checks errors.Is/As resolve both the class sentinel
// and the stage attribution from the report the caller sees.
func TestErrorTaxonomyThroughBatch(t *testing.T) {
	names, cases, lib := population(t, 1)
	tool := MustNew(lib, Config{Align: delaynoise.AlignReceiverInput})
	stubAnalyze(t, func(context.Context, *delaynoise.Case, delaynoise.Options) (*delaynoise.Result, error) {
		return nil, noiseerr.InStage(noiseerr.StageSimulate,
			noiseerr.Numericalf("lsim: singular conductance matrix"))
	})
	r := tool.AnalyzeNet(context.Background(), names[0], cases[0])
	if !errors.Is(r.Err, noiseerr.ErrNumerical) {
		t.Fatalf("err = %v, want noiseerr.ErrNumerical in chain", r.Err)
	}
	var se *noiseerr.StageError
	if !errors.As(r.Err, &se) {
		t.Fatalf("err = %v, want a StageError in chain", r.Err)
	}
	if se.Net != names[0] || se.Stage != noiseerr.StageSimulate {
		t.Fatalf("attribution = net %q stage %q, want net %q stage %q",
			se.Net, se.Stage, names[0], noiseerr.StageSimulate)
	}
	if got := tool.Metrics().Counter("nets.failed").Value(); got != 1 {
		t.Fatalf("nets.failed = %d", got)
	}
}

// TestInvalidCaseClassified runs a structurally bad case end to end: the
// validation failure must classify as ErrInvalidCase at the tool layer.
func TestInvalidCaseClassified(t *testing.T) {
	_, _, lib := population(t, 0)
	tool := MustNew(lib, Config{Align: delaynoise.AlignReceiverInput})
	r := tool.AnalyzeNet(context.Background(), "bad", &delaynoise.Case{})
	if !errors.Is(r.Err, noiseerr.ErrInvalidCase) {
		t.Fatalf("err = %v, want noiseerr.ErrInvalidCase in chain", r.Err)
	}
	if noiseerr.ClassName(r.Err) != "invalid-case" {
		t.Fatalf("classified as %s", noiseerr.ClassName(r.Err))
	}
}

// TestFallbackToPrechar degrades an exhaustive-search convergence
// failure to the table-driven alignment: the net must succeed, count in
// nets.fallback, and not count as failed.
func TestFallbackToPrechar(t *testing.T) {
	names, cases, lib := population(t, 1)
	tool := MustNew(lib, Config{
		Hold:              delaynoise.HoldTransient,
		Align:             delaynoise.AlignExhaustive,
		FallbackToPrechar: true,
		PrecharGrid:       5, // keep the on-demand table build fast
	})
	stubAnalyze(t, func(ctx context.Context, c *delaynoise.Case, opt delaynoise.Options) (*delaynoise.Result, error) {
		if opt.Align == delaynoise.AlignExhaustive {
			return nil, noiseerr.InStage(noiseerr.StageAlign,
				noiseerr.Convergencef("align: no alignment produced an output crossing"))
		}
		if opt.Table == nil {
			t.Error("fallback retry did not carry a prechar table")
		}
		return delaynoise.AnalyzeContext(ctx, c, opt)
	})
	r := tool.AnalyzeNet(context.Background(), names[0], cases[0])
	if r.Err != nil {
		t.Fatalf("fallback net failed: %v", r.Err)
	}
	if r.Res == nil || r.Res.DelayNoise == 0 {
		t.Fatal("fallback produced no result")
	}
	m := tool.Metrics()
	if got := m.Counter("nets.fallback").Value(); got != 1 {
		t.Fatalf("nets.fallback = %d, want 1", got)
	}
	if got := m.Counter("nets.failed").Value(); got != 0 {
		t.Fatalf("nets.failed = %d, want 0", got)
	}
}

// TestConvergenceSurfacesWithoutFallback is the control: the same
// failure with fallback disabled must reach the caller classified as a
// convergence error in the align stage.
func TestConvergenceSurfacesWithoutFallback(t *testing.T) {
	names, cases, lib := population(t, 1)
	tool := MustNew(lib, Config{
		Hold:  delaynoise.HoldTransient,
		Align: delaynoise.AlignExhaustive,
	})
	stubAnalyze(t, func(context.Context, *delaynoise.Case, delaynoise.Options) (*delaynoise.Result, error) {
		return nil, noiseerr.InStage(noiseerr.StageAlign,
			noiseerr.Convergencef("align: no alignment produced an output crossing"))
	})
	r := tool.AnalyzeNet(context.Background(), names[0], cases[0])
	if !errors.Is(r.Err, noiseerr.ErrConvergence) {
		t.Fatalf("err = %v, want noiseerr.ErrConvergence in chain", r.Err)
	}
	var se *noiseerr.StageError
	if !errors.As(r.Err, &se) || se.Stage != noiseerr.StageAlign {
		t.Fatalf("err = %v, want StageAlign attribution", r.Err)
	}
	if got := tool.Metrics().Counter("nets.fallback").Value(); got != 0 {
		t.Fatalf("nets.fallback = %d, want 0", got)
	}
}
