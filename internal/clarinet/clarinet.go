// Package clarinet is the tool-level API of the reproduction, named
// after the Motorola noise-analysis tool the paper's methods shipped in
// (ref [7]). It fans per-net delay-noise analyses across a worker pool,
// shares characterization work between nets through the single-flight
// caches of an internal/engine Session, instruments the run with
// counters and timers, and renders reports.
package clarinet

import (
	"runtime"
	"time"

	"repro/internal/delaynoise"
	"repro/internal/device"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/noiseerr"
	"repro/internal/resilience"
)

// Config selects the analysis variant for a run.
type Config struct {
	Hold  delaynoise.HoldModel
	Align delaynoise.AlignMethod
	// PrecharGrid is the exhaustive-search grid used when building
	// alignment tables on demand (default 17).
	PrecharGrid int
	// Analysis carries the remaining knobs (step, iterations, PRIMA).
	// Its Chars/ROMs/Metrics fields are managed by the session.
	Analysis delaynoise.Options
	// Workers bounds the analysis parallelism. Zero selects
	// runtime.GOMAXPROCS(0) — every available core. Negative values are
	// rejected by New.
	Workers int
	// FallbackToPrechar degrades gracefully when the alignment search
	// fails to converge on a net: the net is retried with the
	// table-driven pre-characterized alignment instead of failing.
	// Fallback retries are counted in the nets.fallback metric. This is
	// the legacy switch for the last rung of the rescue ladder; it is
	// OR-ed into Resilience.FallbackToPrechar.
	FallbackToPrechar bool
	// Resilience configures the convergence rescue ladder (solver
	// homotopy, timestep halving, prechar fallback) and the per-net
	// deadline budget. The zero value disables every rung; see
	// resilience.DefaultPolicy for the recommended production ladder.
	Resilience resilience.Policy
	// NetTimeout bounds each net's analysis wall-clock time, rescue
	// attempts included. It overrides Resilience.NetTimeout when set.
	// Zero leaves only the batch context's global deadline. Nets that
	// exhaust their budget fail with the noiseerr.ErrDeadline class and
	// count in the nets.deadline metric while the batch keeps running.
	NetTimeout time.Duration
	// CharCacheRes is the relative bucket resolution of the shared
	// driver-characterization cache (zero selects
	// delaynoise.DefaultCharBucketRes). Negative disables the cache:
	// every net then characterizes its drivers from scratch, exactly as
	// a standalone delaynoise.Analyze call would.
	CharCacheRes float64
	// DisableROMCache turns off PRIMA reduced-order-model sharing. Only
	// meaningful when Analysis.PRIMAOrder is positive.
	DisableROMCache bool
	// Metrics receives run instrumentation (nets analyzed, cache
	// hit/miss counts, simulation counters, per-stage timers). New
	// installs a fresh registry when nil. Ignored when Session is set.
	Metrics *metrics.Registry
	// Session, when non-nil, backs the tool with an existing engine
	// session instead of building a private one; the tool then shares
	// the session's library, caches, and registry with every other view
	// over it (e.g. a core.Analyzer). The cache knobs above are ignored.
	Session *engine.Session
}

func (c *Config) defaults() {
	if c.PrecharGrid == 0 {
		c.PrecharGrid = 17
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
}

// policy resolves the effective resilience policy from the new
// Resilience field and the legacy FallbackToPrechar / NetTimeout knobs.
func (c *Config) policy() resilience.Policy {
	p := c.Resilience
	if c.FallbackToPrechar {
		p.FallbackToPrechar = true
	}
	if c.NetTimeout > 0 {
		p.NetTimeout = c.NetTimeout
	}
	return p
}

// ParseHold resolves a holding-model name as it appears on CLI flags
// and the noised wire ("thevenin" | "transient").
func ParseHold(v string) (delaynoise.HoldModel, error) {
	switch v {
	case "thevenin":
		return delaynoise.HoldThevenin, nil
	case "transient":
		return delaynoise.HoldTransient, nil
	}
	return 0, noiseerr.Invalidf("clarinet: unknown hold model %q (want thevenin|transient)", v)
}

// ParseAlign resolves an alignment-method name as it appears on CLI
// flags and the noised wire ("exhaustive" | "input" | "prechar").
func ParseAlign(v string) (delaynoise.AlignMethod, error) {
	switch v {
	case "exhaustive":
		return delaynoise.AlignExhaustive, nil
	case "input":
		return delaynoise.AlignReceiverInput, nil
	case "prechar":
		return delaynoise.AlignPrechar, nil
	}
	return 0, noiseerr.Invalidf("clarinet: unknown alignment method %q (want exhaustive|input|prechar)", v)
}

// NetReport is the per-net analysis outcome. Quality records how the
// result was obtained (exact first pass, solver rescue, or prechar
// fallback); it is meaningful only when Err is nil.
type NetReport struct {
	Name    string
	Res     *delaynoise.Result
	Quality resilience.Quality
	Err     error
}

// Tool is a worker-pool view over an engine session.
type Tool struct {
	Lib *device.Library
	Cfg Config

	session *engine.Session
}

// New builds a tool around a cell library. It rejects negative worker
// counts; zero workers means one per available core.
func New(lib *device.Library, cfg Config) (*Tool, error) {
	if cfg.Workers < 0 {
		return nil, noiseerr.Invalidf("clarinet: negative worker count %d", cfg.Workers)
	}
	cfg.defaults()
	s := cfg.Session
	if s == nil {
		s = engine.New(engine.Config{
			Lib:             lib,
			Metrics:         cfg.Metrics,
			PrecharGrid:     cfg.PrecharGrid,
			CharCacheRes:    cfg.CharCacheRes,
			DisableROMCache: cfg.DisableROMCache,
		})
	}
	if lib == nil {
		lib = s.Lib()
	}
	return &Tool{Lib: lib, Cfg: cfg, session: s}, nil
}

// MustNew is New for callers with a known-good configuration (tests,
// examples); it panics on error.
func MustNew(lib *device.Library, cfg Config) *Tool {
	t, err := New(lib, cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// Session returns the tool's underlying engine session.
func (t *Tool) Session() *engine.Session { return t.session }

// Metrics returns the run's instrumentation registry.
func (t *Tool) Metrics() *metrics.Registry { return t.session.Metrics() }

// Workers returns the resolved parallelism of the tool.
func (t *Tool) Workers() int { return t.Cfg.Workers }

// analysisOptions assembles the per-net options, wiring in the session's
// shared caches and instrumentation.
func (t *Tool) analysisOptions() delaynoise.Options {
	opt := t.session.Bind(t.Cfg.Analysis)
	opt.Hold = t.Cfg.Hold
	opt.Align = t.Cfg.Align
	return opt
}
