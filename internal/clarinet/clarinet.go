// Package clarinet is the tool-level API of the reproduction, named
// after the Motorola noise-analysis tool the paper's methods shipped in
// (ref [7]). It fans per-net delay-noise analyses across a worker pool,
// shares characterization work between nets through single-flight
// caches, instruments the run with counters and timers, and renders
// reports.
package clarinet

import (
	"fmt"
	"runtime"

	"repro/internal/align"
	"repro/internal/delaynoise"
	"repro/internal/device"
	"repro/internal/memo"
	"repro/internal/metrics"
)

// Config selects the analysis variant for a run.
type Config struct {
	Hold  delaynoise.HoldModel
	Align delaynoise.AlignMethod
	// PrecharGrid is the exhaustive-search grid used when building
	// alignment tables on demand (default 17).
	PrecharGrid int
	// Analysis carries the remaining knobs (step, iterations, PRIMA).
	// Its Chars/ROMs/Metrics fields are managed by the tool.
	Analysis delaynoise.Options
	// Workers bounds the analysis parallelism. Zero selects
	// runtime.GOMAXPROCS(0) — every available core. Negative values are
	// rejected by New.
	Workers int
	// CharCacheRes is the relative bucket resolution of the shared
	// driver-characterization cache (zero selects
	// delaynoise.DefaultCharBucketRes). Negative disables the cache:
	// every net then characterizes its drivers from scratch, exactly as
	// a standalone delaynoise.Analyze call would.
	CharCacheRes float64
	// DisableROMCache turns off PRIMA reduced-order-model sharing. Only
	// meaningful when Analysis.PRIMAOrder is positive.
	DisableROMCache bool
	// Metrics receives run instrumentation (nets analyzed, cache
	// hit/miss counts, simulation counters, per-stage timers). New
	// installs a fresh registry when nil.
	Metrics *metrics.Registry
}

func (c *Config) defaults() {
	if c.PrecharGrid == 0 {
		c.PrecharGrid = 17
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Metrics == nil {
		c.Metrics = metrics.NewRegistry()
	}
}

// NetReport is the per-net analysis outcome.
type NetReport struct {
	Name string
	Res  *delaynoise.Result
	Err  error
}

// tableKey identifies one receiver pre-characterization.
type tableKey struct {
	cell   string
	rising bool
}

// Tool is a configured analyzer with its shared caches.
type Tool struct {
	Lib *device.Library
	Cfg Config

	metrics *metrics.Registry
	tables  *memo.Cache[tableKey, *align.Table]
	chars   *delaynoise.CharCache
	roms    *delaynoise.ROMCache
}

// New builds a tool around a cell library. It rejects negative worker
// counts; zero workers means one per available core.
func New(lib *device.Library, cfg Config) (*Tool, error) {
	if cfg.Workers < 0 {
		return nil, fmt.Errorf("clarinet: negative worker count %d", cfg.Workers)
	}
	cfg.defaults()
	t := &Tool{
		Lib:     lib,
		Cfg:     cfg,
		metrics: cfg.Metrics,
		tables:  memo.New[tableKey, *align.Table](),
	}
	if cfg.CharCacheRes >= 0 {
		t.chars = delaynoise.NewCharCache(cfg.CharCacheRes, t.metrics)
	}
	if !cfg.DisableROMCache {
		t.roms = delaynoise.NewROMCache(t.metrics)
	}
	return t, nil
}

// MustNew is New for callers with a known-good configuration (tests,
// examples); it panics on error.
func MustNew(lib *device.Library, cfg Config) *Tool {
	t, err := New(lib, cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// Metrics returns the run's instrumentation registry.
func (t *Tool) Metrics() *metrics.Registry { return t.metrics }

// Workers returns the resolved parallelism of the tool.
func (t *Tool) Workers() int { return t.Cfg.Workers }

// tableFor returns (building on first use, with single-flight semantics
// under concurrency) the alignment table of a receiver cell and victim
// direction.
func (t *Tool) tableFor(cell *device.Cell, victimRising bool) (*align.Table, error) {
	tab, hit, err := t.tables.Do(tableKey{cell.Name, victimRising}, func() (*align.Table, error) {
		cfg := align.DefaultConfig(cell.Tech)
		cfg.Grid = t.Cfg.PrecharGrid
		tab, err := align.Precharacterize(cell, victimRising, cfg)
		if err != nil {
			return nil, fmt.Errorf("clarinet: pre-characterizing %s: %w", cell.Name, err)
		}
		return tab, nil
	})
	if hit {
		t.metrics.Counter("cache.tables.hit").Inc()
	} else {
		t.metrics.Counter("cache.tables.miss").Inc()
	}
	return tab, err
}

// analysisOptions assembles the per-net options, wiring in the shared
// caches and instrumentation.
func (t *Tool) analysisOptions() delaynoise.Options {
	opt := t.Cfg.Analysis
	opt.Hold = t.Cfg.Hold
	opt.Align = t.Cfg.Align
	opt.Chars = t.chars
	opt.ROMs = t.roms
	opt.Metrics = t.metrics
	return opt
}
