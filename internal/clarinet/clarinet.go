// Package clarinet is the tool-level API of the reproduction, named
// after the Motorola noise-analysis tool the paper's methods shipped in
// (ref [7]). It fans per-net delay-noise analyses across a worker pool,
// shares characterization work between nets through the single-flight
// caches of an internal/engine Session, instruments the run with
// counters and timers, and renders reports.
package clarinet

import (
	"runtime"

	"repro/internal/delaynoise"
	"repro/internal/device"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/noiseerr"
)

// Config selects the analysis variant for a run.
type Config struct {
	Hold  delaynoise.HoldModel
	Align delaynoise.AlignMethod
	// PrecharGrid is the exhaustive-search grid used when building
	// alignment tables on demand (default 17).
	PrecharGrid int
	// Analysis carries the remaining knobs (step, iterations, PRIMA).
	// Its Chars/ROMs/Metrics fields are managed by the session.
	Analysis delaynoise.Options
	// Workers bounds the analysis parallelism. Zero selects
	// runtime.GOMAXPROCS(0) — every available core. Negative values are
	// rejected by New.
	Workers int
	// FallbackToPrechar degrades gracefully when the exhaustive
	// alignment search fails to converge on a net: the net is retried
	// with the table-driven pre-characterized alignment instead of
	// failing. Only meaningful with Align == AlignExhaustive. Fallback
	// retries are counted in the nets.fallback metric.
	FallbackToPrechar bool
	// CharCacheRes is the relative bucket resolution of the shared
	// driver-characterization cache (zero selects
	// delaynoise.DefaultCharBucketRes). Negative disables the cache:
	// every net then characterizes its drivers from scratch, exactly as
	// a standalone delaynoise.Analyze call would.
	CharCacheRes float64
	// DisableROMCache turns off PRIMA reduced-order-model sharing. Only
	// meaningful when Analysis.PRIMAOrder is positive.
	DisableROMCache bool
	// Metrics receives run instrumentation (nets analyzed, cache
	// hit/miss counts, simulation counters, per-stage timers). New
	// installs a fresh registry when nil. Ignored when Session is set.
	Metrics *metrics.Registry
	// Session, when non-nil, backs the tool with an existing engine
	// session instead of building a private one; the tool then shares
	// the session's library, caches, and registry with every other view
	// over it (e.g. a core.Analyzer). The cache knobs above are ignored.
	Session *engine.Session
}

func (c *Config) defaults() {
	if c.PrecharGrid == 0 {
		c.PrecharGrid = 17
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
}

// NetReport is the per-net analysis outcome.
type NetReport struct {
	Name string
	Res  *delaynoise.Result
	Err  error
}

// Tool is a worker-pool view over an engine session.
type Tool struct {
	Lib *device.Library
	Cfg Config

	session *engine.Session
}

// New builds a tool around a cell library. It rejects negative worker
// counts; zero workers means one per available core.
func New(lib *device.Library, cfg Config) (*Tool, error) {
	if cfg.Workers < 0 {
		return nil, noiseerr.Invalidf("clarinet: negative worker count %d", cfg.Workers)
	}
	cfg.defaults()
	s := cfg.Session
	if s == nil {
		s = engine.New(engine.Config{
			Lib:             lib,
			Metrics:         cfg.Metrics,
			PrecharGrid:     cfg.PrecharGrid,
			CharCacheRes:    cfg.CharCacheRes,
			DisableROMCache: cfg.DisableROMCache,
		})
	}
	if lib == nil {
		lib = s.Lib()
	}
	return &Tool{Lib: lib, Cfg: cfg, session: s}, nil
}

// MustNew is New for callers with a known-good configuration (tests,
// examples); it panics on error.
func MustNew(lib *device.Library, cfg Config) *Tool {
	t, err := New(lib, cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// Session returns the tool's underlying engine session.
func (t *Tool) Session() *engine.Session { return t.session }

// Metrics returns the run's instrumentation registry.
func (t *Tool) Metrics() *metrics.Registry { return t.session.Metrics() }

// Workers returns the resolved parallelism of the tool.
func (t *Tool) Workers() int { return t.Cfg.Workers }

// analysisOptions assembles the per-net options, wiring in the session's
// shared caches and instrumentation.
func (t *Tool) analysisOptions() delaynoise.Options {
	opt := t.session.Bind(t.Cfg.Analysis)
	opt.Hold = t.Cfg.Hold
	opt.Align = t.Cfg.Align
	return opt
}
