// Package clarinet is the tool-level API of the reproduction, named
// after the Motorola noise-analysis tool the paper's methods shipped in
// (ref [7]). It batches per-net delay-noise analyses over a design,
// caches receiver pre-characterization tables, and renders reports.
package clarinet

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/internal/align"
	"repro/internal/delaynoise"
	"repro/internal/device"
	"repro/internal/funcnoise"
)

// Config selects the analysis variant for a run.
type Config struct {
	Hold  delaynoise.HoldModel
	Align delaynoise.AlignMethod
	// PrecharGrid is the exhaustive-search grid used when building
	// alignment tables on demand (default 17).
	PrecharGrid int
	// Analysis carries the remaining knobs (step, iterations, PRIMA).
	Analysis delaynoise.Options
	// Workers bounds the analysis parallelism (default: 2).
	Workers int
}

func (c *Config) defaults() {
	if c.PrecharGrid == 0 {
		c.PrecharGrid = 17
	}
	if c.Workers == 0 {
		c.Workers = 2
	}
}

// NetReport is the per-net analysis outcome.
type NetReport struct {
	Name string
	Res  *delaynoise.Result
	Err  error
}

// Tool is a configured analyzer with its table cache.
type Tool struct {
	Lib *device.Library
	Cfg Config

	mu     sync.Mutex
	tables map[string]*align.Table
}

// New builds a tool around a cell library.
func New(lib *device.Library, cfg Config) *Tool {
	cfg.defaults()
	return &Tool{Lib: lib, Cfg: cfg, tables: map[string]*align.Table{}}
}

// tableFor returns (building on first use) the alignment table of a
// receiver cell and victim direction.
func (t *Tool) tableFor(cell *device.Cell, victimRising bool) (*align.Table, error) {
	key := fmt.Sprintf("%s/%v", cell.Name, victimRising)
	t.mu.Lock()
	tab, ok := t.tables[key]
	t.mu.Unlock()
	if ok {
		return tab, nil
	}
	cfg := align.DefaultConfig(cell.Tech)
	cfg.Grid = t.Cfg.PrecharGrid
	tab, err := align.Precharacterize(cell, victimRising, cfg)
	if err != nil {
		return nil, fmt.Errorf("clarinet: pre-characterizing %s: %w", cell.Name, err)
	}
	t.mu.Lock()
	t.tables[key] = tab
	t.mu.Unlock()
	return tab, nil
}

// AnalyzeNet runs one net.
func (t *Tool) AnalyzeNet(name string, c *delaynoise.Case) NetReport {
	opt := t.Cfg.Analysis
	opt.Hold = t.Cfg.Hold
	opt.Align = t.Cfg.Align
	if opt.Align == delaynoise.AlignPrechar {
		tab, err := t.tableFor(c.Receiver, c.Victim.OutputRising)
		if err != nil {
			return NetReport{Name: name, Err: err}
		}
		opt.Table = tab
	}
	res, err := delaynoise.Analyze(c, opt)
	return NetReport{Name: name, Res: res, Err: err}
}

// AnalyzeAll runs every net, preserving input order, with bounded
// parallelism.
func (t *Tool) AnalyzeAll(names []string, cases []*delaynoise.Case) []NetReport {
	reports := make([]NetReport, len(cases))
	sem := make(chan struct{}, t.Cfg.Workers)
	var wg sync.WaitGroup
	for i := range cases {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			reports[i] = t.AnalyzeNet(names[i], cases[i])
		}(i)
	}
	wg.Wait()
	return reports
}

// FuncReport is the per-net outcome of a functional-noise run.
type FuncReport struct {
	Name string
	Res  *funcnoise.Result
	Err  error
}

// FunctionalAll runs the functional-noise flow on every net.
func (t *Tool) FunctionalAll(names []string, cases []*delaynoise.Case, opt funcnoise.Options) []FuncReport {
	reports := make([]FuncReport, len(cases))
	sem := make(chan struct{}, t.Cfg.Workers)
	var wg sync.WaitGroup
	for i := range cases {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			res, err := funcnoise.Analyze(cases[i], opt)
			reports[i] = FuncReport{Name: names[i], Res: res, Err: err}
		}(i)
	}
	wg.Wait()
	return reports
}

// WriteFuncReport renders the functional-noise outcome, failures and
// biggest glitches first.
func WriteFuncReport(w io.Writer, reports []FuncReport) {
	ok := make([]FuncReport, 0, len(reports))
	var failed []FuncReport
	for _, r := range reports {
		if r.Err != nil {
			failed = append(failed, r)
		} else {
			ok = append(ok, r)
		}
	}
	sort.Slice(ok, func(i, j int) bool {
		return ok[i].Res.OutputGlitch > ok[j].Res.OutputGlitch
	})
	fmt.Fprintf(w, "%-16s %-8s %-10s %-10s %-12s %-12s %-8s\n",
		"net", "state", "Rhold", "Vp(V)", "W(ps)", "glitch(mV)", "status")
	for _, r := range ok {
		res := r.Res
		state := "low"
		if res.VictimHigh {
			state = "high"
		}
		status := "pass"
		if res.Failed {
			status = "FAIL"
		}
		fmt.Fprintf(w, "%-16s %-8s %-10.0f %-10.3f %-12.1f %-12.1f %-8s\n",
			r.Name, state, res.RHold, res.InputPulse.Height,
			res.InputPulse.Width*1e12, res.OutputGlitch*1e3, status)
	}
	for _, r := range failed {
		fmt.Fprintf(w, "%-16s ERROR: %v\n", r.Name, r.Err)
	}
}

// WriteReport renders the batch outcome as an aligned table, worst nets
// first, followed by a failure list.
func WriteReport(w io.Writer, reports []NetReport) {
	ok := make([]NetReport, 0, len(reports))
	var failed []NetReport
	for _, r := range reports {
		if r.Err != nil {
			failed = append(failed, r)
		} else {
			ok = append(ok, r)
		}
	}
	sort.Slice(ok, func(i, j int) bool {
		return ok[i].Res.DelayNoise > ok[j].Res.DelayNoise
	})
	fmt.Fprintf(w, "%-16s %-12s %-12s %-10s %-10s %-10s %-10s %-6s\n",
		"net", "quiet(ps)", "noise(ps)", "Vp(V)", "W(ps)", "Rth(ohm)", "Rtr(ohm)", "iters")
	for _, r := range ok {
		res := r.Res
		fmt.Fprintf(w, "%-16s %-12.2f %-12.2f %-10.3f %-10.1f %-10.0f %-10.0f %-6d\n",
			r.Name, res.QuietCombinedDelay*1e12, res.DelayNoise*1e12,
			res.Pulse.Height, res.Pulse.Width*1e12,
			res.VictimRth, res.VictimRtr, res.Iterations)
	}
	for _, r := range failed {
		fmt.Fprintf(w, "%-16s FAILED: %v\n", r.Name, r.Err)
	}
}
