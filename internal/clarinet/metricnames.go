package clarinet

// Metric-name constant table (enforced by noiselint/metricflow): every
// counter/timer name the pool emits is spelled exactly once, here, so a
// call-site typo cannot silently fork a series. The nets.* counters
// partition per-net outcomes (see AnalyzeNet's doc for the counting
// rules); rescue.* tracks the resilience ladder; the two timers measure
// one net's wall time through each flow.
const (
	mNetsAnalyzed = "nets.analyzed"
	mNetsFailed   = "nets.failed"
	mNetsCanceled = "nets.canceled"
	mNetsDeadline = "nets.deadline"
	mNetsPanicked = "nets.panicked"
	mNetsRescued  = "nets.rescued"
	mNetsFallback = "nets.fallback"
	mNetsExact    = "nets.exact"
	mNetsResumed  = "nets.resumed"

	mNetAnalyze    = "net.analyze"
	mNetQuiet      = "net.quiet"
	mNetFunctional = "net.functional"

	mRescueAttempts = "rescue.attempts"
	// mRescuePrefix is completed with the rung name at the call site:
	// one counter per rescue rung.
	mRescuePrefix = "rescue."
)
