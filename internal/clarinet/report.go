package clarinet

import (
	"fmt"
	"io"
	"sort"
)

// ReportOptions adjusts the rendered batch report.
type ReportOptions struct {
	// Quality appends a column recording how each net's result was
	// obtained (exact / rescued / fallback).
	Quality bool
}

// WriteReport renders the batch outcome as an aligned table, worst nets
// first, followed by a failure list.
func WriteReport(w io.Writer, reports []NetReport) {
	WriteReportOpts(w, reports, ReportOptions{})
}

// WriteReportOpts is WriteReport with rendering options.
func WriteReportOpts(w io.Writer, reports []NetReport, o ReportOptions) {
	ok := make([]NetReport, 0, len(reports))
	var failed []NetReport
	for _, r := range reports {
		if r.Err != nil {
			failed = append(failed, r)
		} else {
			ok = append(ok, r)
		}
	}
	sort.Slice(ok, func(i, j int) bool {
		return ok[i].Res.DelayNoise > ok[j].Res.DelayNoise
	})
	qhdr, qrow := "", ""
	if o.Quality {
		qhdr = fmt.Sprintf(" %-9s", "quality")
	}
	fmt.Fprintf(w, "%-16s %-12s %-12s %-10s %-10s %-10s %-10s %-6s%s\n",
		"net", "quiet(ps)", "noise(ps)", "Vp(V)", "W(ps)", "Rth(ohm)", "Rtr(ohm)", "iters", qhdr)
	for _, r := range ok {
		res := r.Res
		if o.Quality {
			qrow = fmt.Sprintf(" %-9s", r.Quality)
		}
		fmt.Fprintf(w, "%-16s %-12.2f %-12.2f %-10.3f %-10.1f %-10.0f %-10.0f %-6d%s\n",
			r.Name, res.QuietCombinedDelay*1e12, res.DelayNoise*1e12,
			res.Pulse.Height, res.Pulse.Width*1e12,
			res.VictimRth, res.VictimRtr, res.Iterations, qrow)
	}
	for _, r := range failed {
		fmt.Fprintf(w, "%-16s FAILED: %v\n", r.Name, r.Err)
	}
}

// WriteFuncReport renders the functional-noise outcome, failures and
// biggest glitches first.
func WriteFuncReport(w io.Writer, reports []FuncReport) {
	ok := make([]FuncReport, 0, len(reports))
	var failed []FuncReport
	for _, r := range reports {
		if r.Err != nil {
			failed = append(failed, r)
		} else {
			ok = append(ok, r)
		}
	}
	sort.Slice(ok, func(i, j int) bool {
		return ok[i].Res.OutputGlitch > ok[j].Res.OutputGlitch
	})
	fmt.Fprintf(w, "%-16s %-8s %-10s %-10s %-12s %-12s %-8s\n",
		"net", "state", "Rhold", "Vp(V)", "W(ps)", "glitch(mV)", "status")
	for _, r := range ok {
		res := r.Res
		state := "low"
		if res.VictimHigh {
			state = "high"
		}
		status := "pass"
		if res.Failed {
			status = "FAIL"
		}
		fmt.Fprintf(w, "%-16s %-8s %-10.0f %-10.3f %-12.1f %-12.1f %-8s\n",
			r.Name, state, res.RHold, res.InputPulse.Height,
			res.InputPulse.Width*1e12, res.OutputGlitch*1e3, status)
	}
	for _, r := range failed {
		fmt.Fprintf(w, "%-16s ERROR: %v\n", r.Name, r.Err)
	}
}

// WriteMetricsSummary renders the headline numbers of a run: nets,
// simulation counts, and one line per cache with hit/miss counts.
func WriteMetricsSummary(w io.Writer, t *Tool) {
	s := t.Metrics().Snapshot()
	fmt.Fprintf(w, "nets analyzed: %d (%d failed), workers: %d\n",
		s.Counters[mNetsAnalyzed], s.Counters[mNetsFailed], t.Workers())
	// Resilience breakdown, shown once any net deviated from the plain
	// exact path (cancellation is excluded from the failure totals above
	// and itemized here instead).
	if s.Counters[mNetsRescued]+s.Counters[mNetsFallback]+s.Counters[mNetsCanceled]+
		s.Counters[mNetsDeadline]+s.Counters[mNetsPanicked]+s.Counters[mNetsResumed] > 0 {
		fmt.Fprintf(w, "resilience: %d exact, %d rescued, %d fallback, %d deadline, %d panicked, %d canceled, %d resumed\n",
			s.Counters[mNetsExact], s.Counters[mNetsRescued], s.Counters[mNetsFallback],
			s.Counters[mNetsDeadline], s.Counters[mNetsPanicked],
			s.Counters[mNetsCanceled], s.Counters[mNetsResumed])
	}
	fmt.Fprintf(w, "simulations: %d linear, %d nonlinear receiver\n",
		s.Counters["sim.linear"], s.Counters["sim.nonlinear.receiver"])
	for _, cache := range []struct{ base, label string }{
		{"cache.tables", "alignment tables"},
		{"cache.char.rough", "rough driver fits"},
		{"cache.char.full", "driver characterizations"},
		{"cache.holdres", "holding resistances"},
		{"cache.rom", "PRIMA reductions"},
	} {
		hits, misses, ratio := s.CacheRatio(cache.base)
		if hits+misses == 0 {
			continue
		}
		fmt.Fprintf(w, "cache %-24s %d hits / %d misses (%.0f%%)\n",
			cache.label+":", hits, misses, 100*ratio)
	}
}
