package clarinet

import (
	"bytes"
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"

	"repro/internal/delaynoise"
	"repro/internal/device"
	"repro/internal/funcnoise"
	"repro/internal/workload"
)

func population(t *testing.T, n int) ([]string, []*delaynoise.Case, *device.Library) {
	t.Helper()
	lib := device.NewLibrary(device.Default180())
	gen := workload.NewGenerator(lib, workload.DefaultProfile(), 31)
	cases, err := gen.Population(n)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, n)
	for i := range names {
		names[i] = "net" + string(rune('a'+i))
	}
	return names, cases, lib
}

func TestConfigDefaults(t *testing.T) {
	_, _, lib := population(t, 0)
	tool, err := New(lib, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got := tool.Workers(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("default workers = %d, want GOMAXPROCS = %d", got, runtime.GOMAXPROCS(0))
	}
	if tool.Metrics() == nil {
		t.Fatal("tool must install a metrics registry")
	}
	if tool.Session().Chars() == nil {
		t.Fatal("characterization cache must be on by default")
	}
	if tool.Session().ROMs() == nil {
		t.Fatal("ROM cache must be on by default")
	}
	if _, err := New(lib, Config{Workers: -1}); err == nil {
		t.Fatal("negative worker count must be rejected")
	}
	off, err := New(lib, Config{CharCacheRes: -1, DisableROMCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if off.Session().Chars() != nil || off.Session().ROMs() != nil {
		t.Fatal("cache opt-outs ignored")
	}
}

// TestAnalyzeAllOrderAndReport checks the core ordering guarantee: with
// more workers than nets and nondeterministic completion order, reports
// still come back in input order.
func TestAnalyzeAllOrderAndReport(t *testing.T) {
	names, cases, lib := population(t, 4)
	tool := MustNew(lib, Config{
		Hold:    delaynoise.HoldTransient,
		Align:   delaynoise.AlignReceiverInput,
		Workers: 8,
	})
	reports := tool.AnalyzeAll(names, cases)
	if len(reports) != 4 {
		t.Fatalf("got %d reports", len(reports))
	}
	for i, r := range reports {
		if r.Name != names[i] {
			t.Fatalf("report %d order broken: %s vs %s", i, r.Name, names[i])
		}
		if r.Err != nil {
			t.Fatalf("net %s failed: %v", r.Name, r.Err)
		}
		if r.Res.DelayNoise == 0 {
			t.Errorf("net %s has zero delay noise", r.Name)
		}
	}
	if got := tool.Metrics().Counter("nets.analyzed").Value(); got != 4 {
		t.Fatalf("nets.analyzed = %d", got)
	}
	var buf bytes.Buffer
	WriteReport(&buf, reports)
	out := buf.String()
	if !strings.Contains(out, "net") || !strings.Contains(out, "Rtr") {
		t.Fatalf("report missing columns:\n%s", out)
	}
	for _, n := range names {
		if !strings.Contains(out, n) {
			t.Fatalf("report missing net %s", n)
		}
	}
	var mb bytes.Buffer
	WriteMetricsSummary(&mb, tool)
	if !strings.Contains(mb.String(), "nets analyzed: 4") {
		t.Fatalf("metrics summary malformed:\n%s", mb.String())
	}
}

// TestAnalyzeAllDeterministicAcrossWorkerCounts runs the same batch
// serially and maximally parallel: the shared caches are evaluated at
// bucket-canonical operating points, so scheduling must not change any
// result.
func TestAnalyzeAllDeterministicAcrossWorkerCounts(t *testing.T) {
	names, cases, lib := population(t, 4)
	cfg := Config{Hold: delaynoise.HoldTransient, Align: delaynoise.AlignReceiverInput}
	cfg.Workers = 1
	serial := MustNew(lib, cfg).AnalyzeAll(names, cases)
	cfg.Workers = 8
	parallel := MustNew(lib, cfg).AnalyzeAll(names, cases)
	for i := range serial {
		if serial[i].Err != nil || parallel[i].Err != nil {
			t.Fatalf("net %d failed: %v / %v", i, serial[i].Err, parallel[i].Err)
		}
		if serial[i].Res.DelayNoise != parallel[i].Res.DelayNoise {
			t.Fatalf("net %s depends on scheduling: %v vs %v",
				names[i], serial[i].Res.DelayNoise, parallel[i].Res.DelayNoise)
		}
	}
}

// TestCancellationMidBatch cancels the context while the batch runs: the
// batch must still return one report per net, with unstarted nets
// carrying the context error.
func TestCancellationMidBatch(t *testing.T) {
	names, cases, lib := population(t, 4)
	tool := MustNew(lib, Config{
		Hold:    delaynoise.HoldTransient,
		Align:   delaynoise.AlignReceiverInput,
		Workers: 1,
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	got := 0
	canceled := 0
	for r := range tool.Stream(ctx, names, cases) {
		got++
		cancel() // fire after the first report lands
		if errors.Is(r.Err, context.Canceled) {
			canceled++
		} else if r.Err != nil {
			t.Fatalf("unexpected error: %v", r.Err)
		}
	}
	if got != len(cases) {
		t.Fatalf("stream delivered %d of %d reports", got, len(cases))
	}
	if canceled == 0 {
		t.Fatal("no net observed the cancellation")
	}

	// A context canceled before the batch starts fails every net.
	pre, preCancel := context.WithCancel(context.Background())
	preCancel()
	reports := tool.AnalyzeAllContext(pre, names, cases)
	for i, r := range reports {
		if r.Name != names[i] {
			t.Fatalf("canceled batch lost ordering at %d", i)
		}
		if !errors.Is(r.Err, context.Canceled) {
			t.Fatalf("net %s: err = %v, want context.Canceled", r.Name, r.Err)
		}
	}
}

// TestErrorInjectionDoesNotPoisonBatch makes one net structurally
// invalid: it must fail alone while every other net completes.
func TestErrorInjectionDoesNotPoisonBatch(t *testing.T) {
	names, cases, lib := population(t, 3)
	cases[1] = &delaynoise.Case{} // fails Validate: nil net
	tool := MustNew(lib, Config{
		Hold:    delaynoise.HoldTransient,
		Align:   delaynoise.AlignReceiverInput,
		Workers: 3,
	})
	reports := tool.AnalyzeAll(names, cases)
	if reports[1].Err == nil {
		t.Fatal("invalid net must fail")
	}
	for _, i := range []int{0, 2} {
		if reports[i].Err != nil {
			t.Fatalf("healthy net %s poisoned: %v", names[i], reports[i].Err)
		}
	}
	if got := tool.Metrics().Counter("nets.failed").Value(); got != 1 {
		t.Fatalf("nets.failed = %d", got)
	}
	var buf bytes.Buffer
	WriteReport(&buf, reports)
	if !strings.Contains(buf.String(), "FAILED") {
		t.Fatal("failure missing from report")
	}
}

// TestCacheHitAccounting analyzes a batch containing duplicated nets and
// checks that the shared caches record hits in the tool metrics.
func TestCacheHitAccounting(t *testing.T) {
	names, cases, lib := population(t, 2)
	// Duplicate both nets so characterizations repeat across the batch.
	names = append(names, "dupA", "dupB")
	cases = append(cases, cases[0], cases[1])
	tool := MustNew(lib, Config{
		Hold:    delaynoise.HoldTransient,
		Align:   delaynoise.AlignReceiverInput,
		Workers: 4,
	})
	reports := tool.AnalyzeAll(names, cases)
	for _, r := range reports {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Name, r.Err)
		}
	}
	s := tool.Metrics().Snapshot()
	if hits, misses, _ := s.CacheRatio("cache.char.full"); hits == 0 || misses == 0 {
		t.Fatalf("char cache hit/miss = %d/%d, want both nonzero (counters: %v)",
			hits, misses, s.Counters)
	}
	// Duplicated nets must agree exactly with their originals.
	if reports[0].Res.DelayNoise != reports[2].Res.DelayNoise {
		t.Fatal("duplicate net diverged from original")
	}
}

func TestPrecharTableCache(t *testing.T) {
	names, cases, lib := population(t, 2)
	// Force both cases to the same receiver so the table is shared.
	cases[1].Receiver = cases[0].Receiver
	cases[1].Victim.OutputRising = cases[0].Victim.OutputRising
	cases[1].Aggressors[0].OutputRising = !cases[1].Victim.OutputRising
	tool := MustNew(lib, Config{
		Hold:  delaynoise.HoldTransient,
		Align: delaynoise.AlignPrechar,
		// Small grid to keep the test fast.
		PrecharGrid: 9,
	})
	reports := tool.AnalyzeAll(names[:2], cases[:2])
	for _, r := range reports {
		if r.Err != nil {
			t.Fatalf("net %s: %v", r.Name, r.Err)
		}
	}
	if tool.Session().TableCount() != 1 {
		t.Fatalf("expected 1 cached table, got %d", tool.Session().TableCount())
	}
	s := tool.Metrics().Snapshot()
	if hits, misses, _ := s.CacheRatio("cache.tables"); hits != 1 || misses != 1 {
		t.Fatalf("table cache hit/miss = %d/%d, want 1/1", hits, misses)
	}
}

func TestJSONRoundTripThroughTool(t *testing.T) {
	names, cases, lib := population(t, 2)
	var buf bytes.Buffer
	if err := workload.Save(&buf, "generic-180nm", names, cases); err != nil {
		t.Fatal(err)
	}
	names2, cases2, err := workload.Load(&buf, lib)
	if err != nil {
		t.Fatal(err)
	}
	if len(cases2) != 2 || names2[0] != names[0] {
		t.Fatal("round trip lost cases")
	}
	if cases2[0].Victim.Cell.Name != cases[0].Victim.Cell.Name {
		t.Fatal("victim cell changed")
	}
	if cases2[0].Net.VictimIn != cases[0].Net.VictimIn {
		t.Fatal("interconnect changed")
	}
}

func TestWriteReportWithFailures(t *testing.T) {
	reports := []NetReport{
		{Name: "bad", Err: context.DeadlineExceeded},
	}
	var buf bytes.Buffer
	WriteReport(&buf, reports)
	if !strings.Contains(buf.String(), "FAILED") {
		t.Fatalf("failure not reported:\n%s", buf.String())
	}
}

func TestFunctionalAllAndReport(t *testing.T) {
	names, cases, lib := population(t, 2)
	tool := MustNew(lib, Config{})
	reports := tool.FunctionalAll(names, cases, funcnoise.Options{})
	if len(reports) != 2 {
		t.Fatalf("got %d reports", len(reports))
	}
	for _, r := range reports {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Name, r.Err)
		}
		if r.Res.RHold <= 0 {
			t.Fatalf("%s: bad hold resistance", r.Name)
		}
	}
	var buf bytes.Buffer
	WriteFuncReport(&buf, reports)
	out := buf.String()
	if !strings.Contains(out, "glitch") || !strings.Contains(out, names[0]) {
		t.Fatalf("func report malformed:\n%s", out)
	}
	// Error rendering.
	WriteFuncReport(&buf, []FuncReport{{Name: "x", Err: context.Canceled}})
	if !strings.Contains(buf.String(), "ERROR") {
		t.Fatal("func report missing error line")
	}
}
