package clarinet

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/internal/delaynoise"
	"repro/internal/device"
	"repro/internal/funcnoise"
	"repro/internal/workload"
)

func population(t *testing.T, n int) ([]string, []*delaynoise.Case, *device.Library) {
	t.Helper()
	lib := device.NewLibrary(device.Default180())
	gen := workload.NewGenerator(lib, workload.DefaultProfile(), 31)
	cases, err := gen.Population(n)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, n)
	for i := range names {
		names[i] = workload.FromCase("", cases[i]).Name // placeholder
		names[i] = "net" + string(rune('a'+i))
	}
	return names, cases, lib
}

func TestAnalyzeAllOrderAndReport(t *testing.T) {
	names, cases, lib := population(t, 4)
	tool := New(lib, Config{
		Hold:  delaynoise.HoldTransient,
		Align: delaynoise.AlignReceiverInput,
	})
	reports := tool.AnalyzeAll(names, cases)
	if len(reports) != 4 {
		t.Fatalf("got %d reports", len(reports))
	}
	for i, r := range reports {
		if r.Name != names[i] {
			t.Fatalf("report %d order broken: %s vs %s", i, r.Name, names[i])
		}
		if r.Err != nil {
			t.Fatalf("net %s failed: %v", r.Name, r.Err)
		}
		if r.Res.DelayNoise == 0 {
			t.Errorf("net %s has zero delay noise", r.Name)
		}
	}
	var buf bytes.Buffer
	WriteReport(&buf, reports)
	out := buf.String()
	if !strings.Contains(out, "net") || !strings.Contains(out, "Rtr") {
		t.Fatalf("report missing columns:\n%s", out)
	}
	for _, n := range names {
		if !strings.Contains(out, n) {
			t.Fatalf("report missing net %s", n)
		}
	}
}

func TestPrecharTableCache(t *testing.T) {
	names, cases, lib := population(t, 2)
	// Force both cases to the same receiver so the table is shared.
	cases[1].Receiver = cases[0].Receiver
	cases[1].Victim.OutputRising = cases[0].Victim.OutputRising
	cases[1].Aggressors[0].OutputRising = !cases[1].Victim.OutputRising
	tool := New(lib, Config{
		Hold:  delaynoise.HoldTransient,
		Align: delaynoise.AlignPrechar,
		// Small grid to keep the test fast.
		PrecharGrid: 9,
	})
	reports := tool.AnalyzeAll(names[:2], cases[:2])
	for _, r := range reports {
		if r.Err != nil {
			t.Fatalf("net %s: %v", r.Name, r.Err)
		}
	}
	if len(tool.tables) != 1 {
		t.Fatalf("expected 1 cached table, got %d", len(tool.tables))
	}
}

func TestJSONRoundTripThroughTool(t *testing.T) {
	names, cases, lib := population(t, 2)
	var buf bytes.Buffer
	if err := workload.Save(&buf, "generic-180nm", names, cases); err != nil {
		t.Fatal(err)
	}
	names2, cases2, err := workload.Load(&buf, lib)
	if err != nil {
		t.Fatal(err)
	}
	if len(cases2) != 2 || names2[0] != names[0] {
		t.Fatal("round trip lost cases")
	}
	if cases2[0].Victim.Cell.Name != cases[0].Victim.Cell.Name {
		t.Fatal("victim cell changed")
	}
	if cases2[0].Net.VictimIn != cases[0].Net.VictimIn {
		t.Fatal("interconnect changed")
	}
}

func TestWriteReportWithFailures(t *testing.T) {
	reports := []NetReport{
		{Name: "bad", Err: context.DeadlineExceeded},
	}
	var buf bytes.Buffer
	WriteReport(&buf, reports)
	if !strings.Contains(buf.String(), "FAILED") {
		t.Fatalf("failure not reported:\n%s", buf.String())
	}
}

func TestFunctionalAllAndReport(t *testing.T) {
	names, cases, lib := population(t, 2)
	tool := New(lib, Config{})
	reports := tool.FunctionalAll(names, cases, funcnoise.Options{})
	if len(reports) != 2 {
		t.Fatalf("got %d reports", len(reports))
	}
	for _, r := range reports {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Name, r.Err)
		}
		if r.Res.RHold <= 0 {
			t.Fatalf("%s: bad hold resistance", r.Name)
		}
	}
	var buf bytes.Buffer
	WriteFuncReport(&buf, reports)
	out := buf.String()
	if !strings.Contains(out, "glitch") || !strings.Contains(out, names[0]) {
		t.Fatalf("func report malformed:\n%s", out)
	}
	// Error rendering.
	WriteFuncReport(&buf, []FuncReport{{Name: "x", Err: context.Canceled}})
	if !strings.Contains(buf.String(), "ERROR") {
		t.Fatal("func report missing error line")
	}
}
