// Package core is the top-level entry point of the library: a facade
// over the paper's primary contribution (the transient holding
// resistance of Section 2 and the worst-case alignment of Section 3,
// implemented in internal/holdres, internal/align and orchestrated by
// internal/delaynoise) with the defaults a downstream user wants.
//
// The underlying packages remain fully usable for fine-grained control;
// this package only removes boilerplate for the common flows:
//
//	an := core.NewAnalyzer(nil)          // default 0.18um technology
//	res, err := an.DelayNoise(c)         // paper's full flow on one net
//	gold, err := an.Reference(c, res)    // nonlinear validation
//
// An Analyzer is safe for concurrent use: its alignment-table,
// driver-characterization, and reduced-order-model caches are shared
// across goroutines with single-flight semantics, and every run feeds
// the registry returned by Metrics.
package core

import (
	"repro/internal/align"
	"repro/internal/delaynoise"
	"repro/internal/device"
	"repro/internal/memo"
	"repro/internal/metrics"
)

// tableKey identifies one receiver pre-characterization.
type tableKey struct {
	cell   string
	rising bool
}

// Analyzer bundles a technology, its cell library, the default analysis
// options, and the caches shared across analyses.
type Analyzer struct {
	Tech *device.Technology
	Lib  *device.Library
	Opt  delaynoise.Options

	metrics *metrics.Registry
	tables  *memo.Cache[tableKey, *align.Table]
	chars   *delaynoise.CharCache
	roms    *delaynoise.ROMCache
}

// NewAnalyzer builds an analyzer. A nil technology selects the default
// 0.18 um-class process. The default options run the paper's flow: the
// transient holding resistance with exhaustive receiver-output alignment.
func NewAnalyzer(tech *device.Technology) *Analyzer {
	if tech == nil {
		tech = device.Default180()
	}
	reg := metrics.NewRegistry()
	return &Analyzer{
		Tech: tech,
		Lib:  device.NewLibrary(tech),
		Opt: delaynoise.Options{
			Hold:  delaynoise.HoldTransient,
			Align: delaynoise.AlignExhaustive,
		},
		metrics: reg,
		tables:  memo.New[tableKey, *align.Table](),
		chars:   delaynoise.NewCharCache(0, reg),
		roms:    delaynoise.NewROMCache(reg),
	}
}

// Metrics returns the analyzer's instrumentation registry (cache
// hit/miss counts, simulation counters, per-stage timers).
func (a *Analyzer) Metrics() *metrics.Registry { return a.metrics }

// Cell resolves a library cell by name.
func (a *Analyzer) Cell(name string) (*device.Cell, error) {
	return a.Lib.Cell(name)
}

// options assembles per-run options with the shared caches wired in.
func (a *Analyzer) options() delaynoise.Options {
	opt := a.Opt
	opt.Chars = a.chars
	opt.ROMs = a.roms
	opt.Metrics = a.metrics
	return opt
}

// DelayNoise runs the paper's full per-net flow: driver characterization
// (C-effective + Thevenin), linear superposition with the transient
// holding resistance, and worst-case aggressor alignment against the
// combined interconnect + receiver delay.
func (a *Analyzer) DelayNoise(c *delaynoise.Case) (*delaynoise.Result, error) {
	opt := a.options()
	if opt.Align == delaynoise.AlignPrechar && opt.Table == nil {
		tab, err := a.Table(c.Receiver, c.Victim.OutputRising)
		if err != nil {
			return nil, err
		}
		opt.Table = tab
	}
	return delaynoise.Analyze(c, opt)
}

// Baseline runs the traditional flow (Thevenin holding resistance) for
// comparison.
func (a *Analyzer) Baseline(c *delaynoise.Case) (*delaynoise.Result, error) {
	opt := a.options()
	opt.Hold = delaynoise.HoldThevenin
	return delaynoise.Analyze(c, opt)
}

// Reference validates an analysis against the full nonlinear circuit at
// the alignment the analysis chose.
func (a *Analyzer) Reference(c *delaynoise.Case, res *delaynoise.Result) (*delaynoise.GoldenResult, error) {
	return delaynoise.GoldenAtShifts(c, delaynoise.PeakShifts(res.NoisePeakTimes, res.TPeak))
}

// Table returns (building on first use, with single-flight semantics
// under concurrency) the alignment pre-characterization of a receiver
// cell.
func (a *Analyzer) Table(recv *device.Cell, victimRising bool) (*align.Table, error) {
	tab, hit, err := a.tables.Do(tableKey{recv.Name, victimRising}, func() (*align.Table, error) {
		return align.Precharacterize(recv, victimRising, align.DefaultConfig(recv.Tech))
	})
	if hit {
		a.metrics.Counter("cache.tables.hit").Inc()
	} else {
		a.metrics.Counter("cache.tables.miss").Inc()
	}
	return tab, err
}
