// Package core is the top-level entry point of the library: a facade
// over the paper's primary contribution (the transient holding
// resistance of Section 2 and the worst-case alignment of Section 3,
// implemented in internal/holdres, internal/align and orchestrated by
// internal/delaynoise) with the defaults a downstream user wants.
//
// The underlying packages remain fully usable for fine-grained control;
// this package only removes boilerplate for the common flows:
//
//	an := core.NewAnalyzer(nil)          // default 0.18um technology
//	res, err := an.DelayNoise(c)         // paper's full flow on one net
//	gold, err := an.Reference(c, res)    // nonlinear validation
//
// An Analyzer is a thin view over an internal/engine Session, which owns
// the technology, the cell library, the metrics registry, and the
// alignment-table, driver-characterization, and reduced-order-model
// caches. An Analyzer is safe for concurrent use, and one Session can
// back both an Analyzer and a clarinet.Tool — the two then share every
// cache and counter.
package core

import (
	"context"

	"repro/internal/align"
	"repro/internal/delaynoise"
	"repro/internal/device"
	"repro/internal/engine"
	"repro/internal/metrics"
)

// Analyzer binds an engine session to the paper's default per-net flow.
type Analyzer struct {
	Tech *device.Technology
	Lib  *device.Library
	Opt  delaynoise.Options

	session *engine.Session
}

// NewAnalyzer builds an analyzer over a fresh session. A nil technology
// selects the default 0.18 um-class process. The default options run the
// paper's flow: the transient holding resistance with exhaustive
// receiver-output alignment.
func NewAnalyzer(tech *device.Technology) *Analyzer {
	return NewAnalyzerSession(engine.New(engine.Config{Tech: tech}))
}

// NewAnalyzerSession builds an analyzer view over an existing session,
// sharing its library, caches, and instrumentation.
func NewAnalyzerSession(s *engine.Session) *Analyzer {
	return &Analyzer{
		Tech: s.Tech(),
		Lib:  s.Lib(),
		Opt: delaynoise.Options{
			Hold:  delaynoise.HoldTransient,
			Align: delaynoise.AlignExhaustive,
		},
		session: s,
	}
}

// Session returns the underlying engine session.
func (a *Analyzer) Session() *engine.Session { return a.session }

// Metrics returns the analyzer's instrumentation registry (cache
// hit/miss counts, simulation counters, per-stage timers).
func (a *Analyzer) Metrics() *metrics.Registry { return a.session.Metrics() }

// Cell resolves a library cell by name.
func (a *Analyzer) Cell(name string) (*device.Cell, error) {
	return a.session.Cell(name)
}

// DelayNoise runs the paper's full per-net flow: driver characterization
// (C-effective + Thevenin), linear superposition with the transient
// holding resistance, and worst-case aggressor alignment against the
// combined interconnect + receiver delay.
func (a *Analyzer) DelayNoise(c *delaynoise.Case) (*delaynoise.Result, error) {
	return a.DelayNoiseContext(context.Background(), c)
}

// DelayNoiseContext is DelayNoise with cancellation support, threaded
// through characterization, simulation, and the alignment search.
func (a *Analyzer) DelayNoiseContext(ctx context.Context, c *delaynoise.Case) (*delaynoise.Result, error) {
	opt := a.session.Bind(a.Opt)
	if opt.Align == delaynoise.AlignPrechar && opt.Table == nil {
		tab, err := a.TableContext(ctx, c.Receiver, c.Victim.OutputRising)
		if err != nil {
			return nil, err
		}
		opt.Table = tab
	}
	return delaynoise.AnalyzeContext(ctx, c, opt)
}

// Baseline runs the traditional flow (Thevenin holding resistance) for
// comparison.
func (a *Analyzer) Baseline(c *delaynoise.Case) (*delaynoise.Result, error) {
	opt := a.session.Bind(a.Opt)
	opt.Hold = delaynoise.HoldThevenin
	return delaynoise.Analyze(c, opt)
}

// Reference validates an analysis against the full nonlinear circuit at
// the alignment the analysis chose.
func (a *Analyzer) Reference(c *delaynoise.Case, res *delaynoise.Result) (*delaynoise.GoldenResult, error) {
	return delaynoise.GoldenAtShifts(c, delaynoise.PeakShifts(res.NoisePeakTimes, res.TPeak))
}

// Table returns (building on first use, with single-flight semantics
// under concurrency) the alignment pre-characterization of a receiver
// cell.
func (a *Analyzer) Table(recv *device.Cell, victimRising bool) (*align.Table, error) {
	return a.TableContext(context.Background(), recv, victimRising)
}

// TableContext is Table with cancellation support: the corner searches
// that build a missing table run on ctx (the first caller's context,
// under single flight).
func (a *Analyzer) TableContext(ctx context.Context, recv *device.Cell, victimRising bool) (*align.Table, error) {
	return a.session.Table(ctx, recv, victimRising)
}
