// Package core is the top-level entry point of the library: a facade
// over the paper's primary contribution (the transient holding
// resistance of Section 2 and the worst-case alignment of Section 3,
// implemented in internal/holdres, internal/align and orchestrated by
// internal/delaynoise) with the defaults a downstream user wants.
//
// The underlying packages remain fully usable for fine-grained control;
// this package only removes boilerplate for the common flows:
//
//	an := core.NewAnalyzer(nil)          // default 0.18um technology
//	res, err := an.DelayNoise(c)         // paper's full flow on one net
//	gold, err := an.Reference(c, res)    // nonlinear validation
package core

import (
	"fmt"
	"sync"

	"repro/internal/align"
	"repro/internal/delaynoise"
	"repro/internal/device"
)

// Analyzer bundles a technology, its cell library, the default analysis
// options, and a cache of alignment tables.
type Analyzer struct {
	Tech *device.Technology
	Lib  *device.Library
	Opt  delaynoise.Options

	mu     sync.Mutex
	tables map[string]*align.Table
}

// NewAnalyzer builds an analyzer. A nil technology selects the default
// 0.18 um-class process. The default options run the paper's flow: the
// transient holding resistance with exhaustive receiver-output alignment.
func NewAnalyzer(tech *device.Technology) *Analyzer {
	if tech == nil {
		tech = device.Default180()
	}
	return &Analyzer{
		Tech: tech,
		Lib:  device.NewLibrary(tech),
		Opt: delaynoise.Options{
			Hold:  delaynoise.HoldTransient,
			Align: delaynoise.AlignExhaustive,
		},
		tables: map[string]*align.Table{},
	}
}

// Cell resolves a library cell by name.
func (a *Analyzer) Cell(name string) (*device.Cell, error) {
	return a.Lib.Cell(name)
}

// DelayNoise runs the paper's full per-net flow: driver characterization
// (C-effective + Thevenin), linear superposition with the transient
// holding resistance, and worst-case aggressor alignment against the
// combined interconnect + receiver delay.
func (a *Analyzer) DelayNoise(c *delaynoise.Case) (*delaynoise.Result, error) {
	opt := a.Opt
	if opt.Align == delaynoise.AlignPrechar && opt.Table == nil {
		tab, err := a.Table(c.Receiver, c.Victim.OutputRising)
		if err != nil {
			return nil, err
		}
		opt.Table = tab
	}
	return delaynoise.Analyze(c, opt)
}

// Baseline runs the traditional flow (Thevenin holding resistance) for
// comparison.
func (a *Analyzer) Baseline(c *delaynoise.Case) (*delaynoise.Result, error) {
	opt := a.Opt
	opt.Hold = delaynoise.HoldThevenin
	return delaynoise.Analyze(c, opt)
}

// Reference validates an analysis against the full nonlinear circuit at
// the alignment the analysis chose.
func (a *Analyzer) Reference(c *delaynoise.Case, res *delaynoise.Result) (*delaynoise.GoldenResult, error) {
	return delaynoise.GoldenAtShifts(c, delaynoise.PeakShifts(res.NoisePeakTimes, res.TPeak))
}

// Table returns (building and caching on first use) the 8-point
// alignment pre-characterization of a receiver cell.
func (a *Analyzer) Table(recv *device.Cell, victimRising bool) (*align.Table, error) {
	key := fmt.Sprintf("%s/%v", recv.Name, victimRising)
	a.mu.Lock()
	tab, ok := a.tables[key]
	a.mu.Unlock()
	if ok {
		return tab, nil
	}
	tab, err := align.Precharacterize(recv, victimRising, align.DefaultConfig(recv.Tech))
	if err != nil {
		return nil, err
	}
	a.mu.Lock()
	a.tables[key] = tab
	a.mu.Unlock()
	return tab, nil
}
