package core

import (
	"math"
	"testing"

	"repro/internal/delaynoise"
	"repro/internal/rcnet"
)

func smallCase(t *testing.T, a *Analyzer) *delaynoise.Case {
	t.Helper()
	cell := func(n string) *delaynoise.DriverSpec {
		c, err := a.Cell(n)
		if err != nil {
			t.Fatal(err)
		}
		return &delaynoise.DriverSpec{Cell: c}
	}
	net := rcnet.Build(rcnet.CoupledSpec{
		Victim: rcnet.LineSpec{Name: "v", Segments: 4, RTotal: 350, CGround: 30e-15},
		Aggressors: []rcnet.AggressorSpec{
			{Line: rcnet.LineSpec{Name: "a", Segments: 4, RTotal: 250, CGround: 25e-15}, CCouple: 28e-15, From: 0, To: 1},
		},
	})
	vic := cell("INVX2")
	vic.InputSlew, vic.OutputRising, vic.InputStart = 300e-12, true, 200e-12
	agg := cell("INVX8")
	agg.InputSlew, agg.OutputRising, agg.InputStart = 80e-12, false, 400e-12
	recv, err := a.Cell("INVX2")
	if err != nil {
		t.Fatal(err)
	}
	return &delaynoise.Case{
		Net:          net,
		Victim:       *vic,
		Aggressors:   []delaynoise.DriverSpec{*agg},
		Receiver:     recv,
		ReceiverLoad: 10e-15,
	}
}

func TestAnalyzerDefaults(t *testing.T) {
	a := NewAnalyzer(nil)
	if a.Tech.Vdd != 1.8 {
		t.Fatalf("default Vdd = %v", a.Tech.Vdd)
	}
	if a.Opt.Hold != delaynoise.HoldTransient || a.Opt.Align != delaynoise.AlignExhaustive {
		t.Fatal("defaults should run the paper's flow")
	}
	if _, err := a.Cell("INVX4"); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Cell("NOPE"); err == nil {
		t.Fatal("expected error for unknown cell")
	}
}

func TestDelayNoiseVsBaselineVsReference(t *testing.T) {
	a := NewAnalyzer(nil)
	c := smallCase(t, a)
	ours, err := a.DelayNoise(c)
	if err != nil {
		t.Fatal(err)
	}
	base, err := a.Baseline(c)
	if err != nil {
		t.Fatal(err)
	}
	if base.VictimRtr != base.VictimRth {
		t.Fatal("baseline must keep the Thevenin holding resistance")
	}
	gold, err := a.Reference(c, ours)
	if err != nil {
		t.Fatal(err)
	}
	if gold.DelayNoise <= 0 {
		t.Fatalf("reference delay noise %v", gold.DelayNoise)
	}
	errOurs := math.Abs(ours.DelayNoise - gold.DelayNoise)
	errBase := math.Abs(base.DelayNoise - gold.DelayNoise)
	if errOurs > errBase {
		t.Errorf("facade flow (%v) should not be worse than baseline (%v)", errOurs, errBase)
	}
}

func TestTableCache(t *testing.T) {
	a := NewAnalyzer(nil)
	recv, err := a.Cell("INVX1")
	if err != nil {
		t.Fatal(err)
	}
	t1, err := a.Table(recv, true)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := a.Table(recv, true)
	if err != nil {
		t.Fatal(err)
	}
	if t1 != t2 {
		t.Fatal("table not cached")
	}
	if t1.NumPoints() != 8 {
		t.Fatalf("table has %d points", t1.NumPoints())
	}
}
