package funcnoise

import (
	"math"
	"testing"

	"repro/internal/align"
	"repro/internal/delaynoise"
	"repro/internal/device"
	"repro/internal/rcnet"
)

var (
	tech = device.Default180()
	lib  = device.NewLibrary(tech)
)

func cellOf(t *testing.T, name string) *device.Cell {
	t.Helper()
	c, err := lib.Cell(name)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func quietCase(t *testing.T, victim, agg string, coupling float64) *delaynoise.Case {
	t.Helper()
	net := rcnet.Build(rcnet.CoupledSpec{
		Victim: rcnet.LineSpec{Name: "v", Segments: 5, RTotal: 400, CGround: 30e-15},
		Aggressors: []rcnet.AggressorSpec{
			{Line: rcnet.LineSpec{Name: "a", Segments: 5, RTotal: 300, CGround: 25e-15}, CCouple: coupling, From: 0, To: 1},
		},
	})
	return &delaynoise.Case{
		Net:    net,
		Victim: delaynoise.DriverSpec{Cell: cellOf(t, victim), InputSlew: 200e-12, OutputRising: true, InputStart: 200e-12},
		Aggressors: []delaynoise.DriverSpec{
			{Cell: cellOf(t, agg), InputSlew: 60e-12, OutputRising: false, InputStart: 300e-12},
		},
		Receiver:     cellOf(t, "INVX2"),
		ReceiverLoad: 8e-15,
	}
}

func TestQuiescentResistance(t *testing.T) {
	// A stronger cell must hold its rail with a lower resistance, and the
	// resistance must be on the scale of the device on-resistance.
	x1, err := QuiescentResistance(cellOf(t, "INVX1"), true)
	if err != nil {
		t.Fatal(err)
	}
	x8, err := QuiescentResistance(cellOf(t, "INVX8"), true)
	if err != nil {
		t.Fatal(err)
	}
	if x8 >= x1/4 {
		t.Fatalf("INVX8 hold R %v should be well below INVX1 %v", x8, x1)
	}
	if x1 < 50 || x1 > 50000 {
		t.Fatalf("implausible hold R %v", x1)
	}
	// High and low states differ (PMOS vs NMOS on-resistance).
	lo, err := QuiescentResistance(cellOf(t, "INVX1"), false)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lo-x1)/x1 < 0.05 {
		t.Logf("note: hold R nearly symmetric (%v vs %v)", lo, x1)
	}
}

func TestAnalyzeQuietVictim(t *testing.T) {
	c := quietCase(t, "INVX2", "INVX8", 25e-15)
	res, err := Analyze(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.VictimHigh {
		t.Fatal("falling aggressor should attack the high victim state")
	}
	// Falling aggressor on a high victim: negative pulse.
	if res.InputPulse.Height >= 0 {
		t.Fatalf("pulse height %v should be negative", res.InputPulse.Height)
	}
	if res.InputPulse.Height < -tech.Vdd {
		t.Fatalf("pulse height %v exceeds the rail", res.InputPulse.Height)
	}
	if res.OutputGlitch < 0 {
		t.Fatalf("glitch %v", res.OutputGlitch)
	}
	// A quiet victim held by a real driver sees much less noise than a
	// switching one: the glitch must not be a failure at this coupling.
	if res.Failed {
		t.Fatalf("moderate coupling should not fail; glitch %v V", res.OutputGlitch)
	}
}

func TestStrongerCouplingBiggerGlitch(t *testing.T) {
	weak, err := Analyze(quietCase(t, "INVX1", "INVX16", 15e-15), Options{})
	if err != nil {
		t.Fatal(err)
	}
	strong, err := Analyze(quietCase(t, "INVX1", "INVX16", 60e-15), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(strong.InputPulse.Height) <= math.Abs(weak.InputPulse.Height) {
		t.Fatalf("coupling 60fF pulse %v should exceed 15fF pulse %v",
			strong.InputPulse.Height, weak.InputPulse.Height)
	}
	if strong.OutputGlitch <= weak.OutputGlitch {
		t.Fatalf("glitch should grow with coupling: %v vs %v",
			strong.OutputGlitch, weak.OutputGlitch)
	}
}

func TestWeakVictimFailure(t *testing.T) {
	// A very weak victim driver with overwhelming coupling must flag a
	// functional failure.
	c := quietCase(t, "INVX1", "INVX16", 140e-15)
	c.Receiver = cellOf(t, "INVX2")
	res, err := Analyze(c, Options{FailFraction: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Failed {
		t.Fatalf("expected failure; glitch %v V, pulse %v V", res.OutputGlitch, res.InputPulse.Height)
	}
}

func TestRisingAggressorAttacksLowVictim(t *testing.T) {
	c := quietCase(t, "INVX2", "INVX8", 25e-15)
	c.Aggressors[0].OutputRising = true
	res, err := Analyze(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.VictimHigh {
		t.Fatal("rising aggressor should attack the low victim state")
	}
	if res.InputPulse.Height <= 0 {
		t.Fatalf("pulse height %v should be positive", res.InputPulse.Height)
	}
}

func TestImmunityCurveShape(t *testing.T) {
	recv := cellOf(t, "INVX2")
	curve, err := Immunity(recv, true, ImmunityOptions{Load: 30e-15})
	if err != nil {
		t.Fatal(err)
	}
	if len(curve.Points) < 6 {
		t.Fatalf("only %d points", len(curve.Points))
	}
	// Monotone: narrower pulses need at least as much height.
	for i := 1; i < len(curve.Points); i++ {
		if curve.Points[i].Height > curve.Points[i-1].Height+1e-9 {
			t.Fatalf("rejection curve not monotone at width %v: %v > %v",
				curve.Points[i].Width, curve.Points[i].Height, curve.Points[i-1].Height)
		}
	}
	// Wide pulses approach the DC noise margin (well below the rail);
	// narrow pulses need substantially more height.
	first, last := curve.Points[0], curve.Points[len(curve.Points)-1]
	if last.Height >= tech.Vdd {
		t.Fatal("wide pulses must eventually fail")
	}
	if first.Height < 1.1*last.Height {
		t.Fatalf("narrow pulse height %v should exceed wide %v (low-pass filtering)",
			first.Height, last.Height)
	}
}

func TestImmunityInterpolationAndCheck(t *testing.T) {
	recv := cellOf(t, "INVX1")
	curve, err := Immunity(recv, false, ImmunityOptions{
		Widths: []float64{50e-12, 200e-12, 800e-12}, Load: 10e-15,
	})
	if err != nil {
		t.Fatal(err)
	}
	mid := curve.CriticalHeight(100e-12)
	if mid > curve.Points[0].Height || mid < curve.Points[1].Height {
		t.Fatalf("interpolated height %v outside bracket [%v, %v]",
			mid, curve.Points[1].Height, curve.Points[0].Height)
	}
	// Clamping outside the range.
	if curve.CriticalHeight(1e-12) != curve.Points[0].Height {
		t.Fatal("clamp below range broken")
	}
	if curve.CriticalHeight(1) != curve.Points[len(curve.Points)-1].Height {
		t.Fatal("clamp above range broken")
	}
	// Check(): a pulse just above the boundary fails, just below passes.
	p := align.Pulse{Height: curve.Points[1].Height + 0.05, Width: 200e-12}
	if !curve.Check(p) {
		t.Fatal("pulse above boundary should fail")
	}
	p.Height = curve.Points[1].Height - 0.05
	if curve.Check(p) {
		t.Fatal("pulse below boundary should pass")
	}
}

func TestImmunityLoadEffect(t *testing.T) {
	// A heavier output load filters more: the critical height of a narrow
	// pulse must grow with load.
	recv := cellOf(t, "INVX2")
	light, err := Immunity(recv, true, ImmunityOptions{Widths: []float64{40e-12}, Load: 3e-15})
	if err != nil {
		t.Fatal(err)
	}
	heavy, err := Immunity(recv, true, ImmunityOptions{Widths: []float64{40e-12}, Load: 80e-15})
	if err != nil {
		t.Fatal(err)
	}
	if heavy.Points[0].Height <= light.Points[0].Height {
		t.Fatalf("heavy load %v should reject more than light %v",
			heavy.Points[0].Height, light.Points[0].Height)
	}
}
