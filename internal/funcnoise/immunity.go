package funcnoise

import (
	"fmt"
	"math"

	"repro/internal/align"
	"repro/internal/device"
	"repro/internal/gatesim"
)

// ImmunityPoint is one point of a receiver's noise-rejection curve: the
// smallest input pulse height (at the given width) whose output glitch
// reaches the failure threshold.
type ImmunityPoint struct {
	Width  float64 // pulse half-height width, s
	Height float64 // critical input pulse height, V
}

// ImmunityCurve is a receiver's noise-rejection boundary: pulses below
// the curve are filtered, pulses above propagate. Narrow pulses need far
// more height than wide ones — the low-pass behaviour that the paper's
// alignment discussion (§3.1) leans on.
type ImmunityCurve struct {
	CellName   string
	Load       float64
	VictimHigh bool    // attacked state (high victim, downward pulses)
	FailLevel  float64 // output glitch magnitude defining failure, V
	Points     []ImmunityPoint
}

// ImmunityOptions tune the characterization.
type ImmunityOptions struct {
	// Widths lists the pulse widths to characterize (default: 8 points,
	// 20 ps to 1 ns, geometric).
	Widths []float64
	// FailFraction defines failure as an output glitch of this fraction
	// of Vdd (default 0.5).
	FailFraction float64
	// Load is the receiver output load (default 5 fF).
	Load float64
}

func (o *ImmunityOptions) defaults(vdd float64) {
	if len(o.Widths) == 0 {
		w := 20e-12
		for len(o.Widths) < 8 {
			o.Widths = append(o.Widths, w)
			w *= 1.75
		}
	}
	if o.FailFraction == 0 {
		o.FailFraction = 0.5
	}
	if o.Load == 0 {
		o.Load = 5e-15
	}
	_ = vdd
}

// Immunity characterizes a receiver's noise-rejection curve by bisecting
// the critical pulse height at each width.
func Immunity(recv *device.Cell, victimHigh bool, opt ImmunityOptions) (*ImmunityCurve, error) {
	vdd := recv.Tech.Vdd
	opt.defaults(vdd)
	curve := &ImmunityCurve{
		CellName:   recv.Name,
		Load:       opt.Load,
		VictimHigh: victimHigh,
		FailLevel:  opt.FailFraction * vdd,
	}
	rail := 0.0
	if victimHigh {
		rail = vdd
	}
	glitchOf := func(width, height float64) (float64, error) {
		h := height
		if victimHigh {
			h = -height
		}
		pulse := align.Pulse{Height: h, Width: width}.Waveform()
		in := pulse.Shift(0.3e-9).Offset(rail)
		out, err := gatesim.Receive(recv, in, opt.Load, gatesim.Options{})
		if err != nil {
			return 0, err
		}
		quiescent := out.At(out.Start())
		g := 0.0
		for i := range out.T {
			if d := math.Abs(out.V[i] - quiescent); d > g {
				g = d
			}
		}
		return g, nil
	}
	for _, width := range opt.Widths {
		// The full-rail pulse must fail, or the point is unbounded.
		gMax, err := glitchOf(width, vdd)
		if err != nil {
			return nil, fmt.Errorf("funcnoise: immunity at width %g: %w", width, err)
		}
		if gMax < curve.FailLevel {
			// Even a rail-to-rail pulse of this width is filtered; record
			// the rail as the (unreachable) bound.
			curve.Points = append(curve.Points, ImmunityPoint{Width: width, Height: vdd})
			continue
		}
		lo, hi := 0.0, vdd
		for i := 0; i < 24; i++ {
			mid := 0.5 * (lo + hi)
			g, err := glitchOf(width, mid)
			if err != nil {
				return nil, err
			}
			if g < curve.FailLevel {
				lo = mid
			} else {
				hi = mid
			}
		}
		curve.Points = append(curve.Points, ImmunityPoint{Width: width, Height: 0.5 * (lo + hi)})
	}
	return curve, nil
}

// CriticalHeight interpolates the rejection boundary at a pulse width
// (clamped to the characterized range).
func (c *ImmunityCurve) CriticalHeight(width float64) float64 {
	n := len(c.Points)
	if n == 0 {
		return math.Inf(1)
	}
	if width <= c.Points[0].Width {
		return c.Points[0].Height
	}
	if width >= c.Points[n-1].Width {
		return c.Points[n-1].Height
	}
	for i := 1; i < n; i++ {
		if width <= c.Points[i].Width {
			a, b := c.Points[i-1], c.Points[i]
			u := (width - a.Width) / (b.Width - a.Width)
			return a.Height + u*(b.Height-a.Height)
		}
	}
	return c.Points[n-1].Height
}

// Check classifies a measured pulse against the curve.
func (c *ImmunityCurve) Check(p align.Pulse) bool {
	return math.Abs(p.Height) >= c.CriticalHeight(p.Width)
}
