// Package funcnoise implements the functional-noise half of the
// ClariNet-style tool: when the victim is *stable* while its aggressors
// switch, the induced pulse can flip downstream logic (the paper's
// Section 1 defines this failure mode; its delay-noise analysis is the
// sibling flow in internal/delaynoise).
//
// The flow mirrors the delay-noise superposition: each aggressor's
// Thevenin model injects noise into the coupled interconnect while the
// quiet victim is held by its driver's quiescent output resistance; the
// peak-aligned composite pulse is then propagated through the nonlinear
// receiver and the output glitch compared against a failure threshold.
package funcnoise

import (
	"context"
	"fmt"
	"math"

	"repro/internal/align"
	"repro/internal/delaynoise"
	"repro/internal/device"
	"repro/internal/gatesim"
	"repro/internal/lsim"
	"repro/internal/mna"
	"repro/internal/nlsim"
	"repro/internal/noiseerr"
	"repro/internal/thevenin"
	"repro/internal/waveform"
)

// Options configure a functional-noise analysis.
type Options struct {
	// FailFraction is the receiver-output glitch magnitude, as a fraction
	// of Vdd, above which the net is reported as a functional failure
	// (default 0.5: the glitch propagates as a wrong logic level).
	FailFraction float64
	// Step is the linear-simulation time step (default 1 ps).
	Step float64
}

func (o *Options) defaults() {
	if o.FailFraction == 0 {
		o.FailFraction = 0.5
	}
	if o.Step == 0 {
		o.Step = 1e-12
	}
}

// Result is the outcome of one net's functional-noise analysis.
type Result struct {
	// VictimHigh reports the analyzed victim state (true: held at Vdd,
	// aggressors falling pull it down; false: held at ground, aggressors
	// rising push it up).
	VictimHigh bool
	RHold      float64 // quiescent victim holding resistance, ohm

	InputPulse   align.Pulse   // composite noise at the receiver input
	InputNoise   *waveform.PWL // the composite waveform
	OutputGlitch float64       // receiver output glitch magnitude, V
	Failed       bool
}

// QuiescentResistance measures a driver's small-signal output resistance
// while it statically holds its output at a rail: a small probe current
// is injected at the output and the DC deviation measured. This is the
// correct holding resistance for a *quiet* victim (for a switching
// victim, package holdres computes the transient value instead).
func QuiescentResistance(cell *device.Cell, outputHigh bool) (float64, error) {
	return QuiescentResistanceContext(context.Background(), cell, outputHigh)
}

// QuiescentResistanceContext is QuiescentResistance with cancellation
// support for the two DC solves.
func QuiescentResistanceContext(ctx context.Context, cell *device.Cell, outputHigh bool) (float64, error) {
	tech := cell.Tech
	// Input level that holds the output at the requested rail.
	vin := 0.0
	if cell.InputRisingFor(outputHigh) {
		vin = tech.Vdd
	}
	build := func(probe float64) (*nlsim.Circuit, nlsim.Ref) {
		c := nlsim.NewCircuit()
		in := c.Fixed("in", waveform.Constant(vin))
		out := c.Node("out")
		c.AddCell(cell, "u", in, out)
		if probe != 0 {
			c.AddI(out, waveform.Constant(probe))
		}
		return c, out
	}
	solve := func(probe float64) (float64, error) {
		c, out := build(probe)
		x, err := nlsim.DCContext(ctx, c, 0, nil)
		if err != nil {
			return 0, err
		}
		v, err := nlsim.StateOf(c, x, out)
		if err != nil {
			return 0, err
		}
		return v, nil
	}
	v0, err := solve(0)
	if err != nil {
		return 0, fmt.Errorf("funcnoise: quiescent point: %w", err)
	}
	// Probe with a current that perturbs the output by a few tens of mV.
	probe := -20e-6
	if !outputHigh {
		probe = 20e-6
	}
	v1, err := solve(probe)
	if err != nil {
		return 0, fmt.Errorf("funcnoise: probed point: %w", err)
	}
	r := (v1 - v0) / probe
	if r <= 0 {
		return 0, noiseerr.Numericalf("funcnoise: non-positive quiescent resistance %g", r)
	}
	return r, nil
}

// Analyze runs the functional-noise flow on a case. The victim's
// DriverSpec fields other than Cell are ignored (the victim is quiet);
// aggressor directions determine the pulse polarity. The analyzed victim
// state opposes the aggressors: falling aggressors attack a high victim.
func Analyze(c *delaynoise.Case, opt Options) (*Result, error) {
	return AnalyzeContext(context.Background(), c, opt)
}

// AnalyzeContext is Analyze with cancellation support, threaded through
// the quiescent-resistance solves, the aggressor superposition runs, and
// the receiver simulation.
func AnalyzeContext(ctx context.Context, c *delaynoise.Case, opt Options) (*Result, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	opt.defaults()
	tech := c.Victim.Cell.Tech
	// The vulnerable victim state is the one the aggressors pull away
	// from; use the first aggressor's direction (mixed-direction cases
	// analyze the majority polarity).
	falling := 0
	for _, a := range c.Aggressors {
		if !a.OutputRising {
			falling++
		}
	}
	victimHigh := falling*2 >= len(c.Aggressors)

	rHold, err := QuiescentResistanceContext(ctx, c.Victim.Cell, victimHigh)
	if err != nil {
		return nil, err
	}

	// Superpose the aggressor noise pulses at the receiver input with the
	// victim held by its quiescent resistance.
	vRail := 0.0
	if victimHigh {
		vRail = tech.Vdd
	}
	var noises []*waveform.PWL
	horizon := 0.0
	for k, a := range c.Aggressors {
		m, _, err := thevenin.FitContext(ctx, a.Cell, a.InputSlew, a.Cell.InputRisingFor(a.OutputRising), aggLumpedCap(c, k))
		if err != nil {
			return nil, fmt.Errorf("funcnoise: aggressor %d fit: %w", k, err)
		}
		m.T0 += a.InputStart - gatesim.InputStart
		if t := m.T0 + m.Dt; t > horizon {
			horizon = t
		}
		n, err := aggressorNoise(ctx, c, k, m, rHold, vRail, opt.Step)
		if err != nil {
			return nil, err
		}
		noises = append(noises, n)
	}
	comp, err := align.Composite(noises...)
	if err != nil {
		return nil, fmt.Errorf("funcnoise: composite: %w", err)
	}
	pulse, err := align.Params(comp)
	if err != nil {
		return nil, fmt.Errorf("funcnoise: pulse params: %w", err)
	}

	// Propagate through the receiver: input = rail + composite.
	tp, _ := comp.Peak()
	in := comp.Shift(0.3e-9 - tp).Offset(vRail)
	out, err := gatesim.Receive(c.Receiver, in, c.ReceiverLoad, gatesim.Options{Ctx: ctx})
	if err != nil {
		return nil, fmt.Errorf("funcnoise: receiver sim: %w", err)
	}
	// Glitch: deviation of the output from its quiescent level.
	quiescent := out.At(out.Start())
	glitch := 0.0
	for i := range out.T {
		if d := math.Abs(out.V[i] - quiescent); d > glitch {
			glitch = d
		}
	}
	return &Result{
		VictimHigh:   victimHigh,
		RHold:        rHold,
		InputPulse:   pulse,
		InputNoise:   comp,
		OutputGlitch: glitch,
		Failed:       glitch >= opt.FailFraction*tech.Vdd,
	}, nil
}

// aggLumpedCap returns the rough lumped load of aggressor k.
func aggLumpedCap(c *delaynoise.Case, k int) float64 {
	spec := c.Net.Spec.Aggressors[k]
	load := c.AggLoad
	if load == 0 {
		load = 5e-15
	}
	return spec.Line.CGround + spec.CCouple + load
}

// aggressorNoise runs one linear superposition simulation with the quiet
// victim held at its rail.
func aggressorNoise(ctx context.Context, c *delaynoise.Case, k int, m thevenin.Model, rHold, vRail, step float64) (*waveform.PWL, error) {
	ckt := c.Net.Circuit.Clone()
	if cin := c.Receiver.InputCap(); cin > 0 {
		ckt.AddC("__recvin", c.Net.VictimOut, "0", cin)
	}
	ckt.AddDriver("__agg", c.Net.AggIn[k], m.SourceWaveform(), m.Rth)
	ckt.AddDriver("__vic", c.Net.VictimIn, waveform.Constant(vRail), rHold)
	for j := range c.Aggressors {
		if j == k {
			continue
		}
		// Other aggressors hold their pre-transition rail; a rough
		// resistance suffices for holding.
		rail := c.Aggressors[j].Cell.Tech.Vdd
		if c.Aggressors[j].OutputRising {
			rail = 0
		}
		ckt.AddDriver(fmt.Sprintf("__hold%d", j), c.Net.AggIn[j], waveform.Constant(rail), 500)
	}
	sys, err := mna.Build(ckt)
	if err != nil {
		return nil, err
	}
	horizon := m.T0 + m.Dt + 2e-9
	res, err := lsim.Run(sys, lsim.Options{TStop: horizon, Step: step, InitDC: true, Ctx: ctx})
	if err != nil {
		return nil, fmt.Errorf("funcnoise: aggressor %d sim: %w", k, err)
	}
	v, err := res.Voltage(c.Net.VictimOut)
	if err != nil {
		return nil, err
	}
	return v.Offset(-v.At(v.Start())), nil
}
