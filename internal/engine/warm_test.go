package engine_test

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/warmstore"
)

// The warm-start contract: a second process with the same configuration
// loads the first process's derived state and serves it as cache hits,
// with results identical to a cold build.
func TestWarmSessionRoundTrip(t *testing.T) {
	st, err := warmstore.Open(t.TempDir(), metrics.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}

	cold := engine.New(engine.Config{PrecharGrid: 5, Metrics: metrics.NewRegistry()})
	cell, err := cold.Cell("INVX2")
	if err != nil {
		t.Fatal(err)
	}
	tabCold, err := cold.Table(context.Background(), cell, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := cold.SaveWarm(st); err != nil {
		t.Fatal(err)
	}

	reg := metrics.NewRegistry()
	warm := engine.New(engine.Config{PrecharGrid: 5, Metrics: reg})
	ok, err := warm.LoadWarm(st)
	if err != nil || !ok {
		t.Fatalf("LoadWarm = (%v, %v), want hit", ok, err)
	}
	if warm.TableCount() != 1 {
		t.Fatalf("warm TableCount = %d, want 1", warm.TableCount())
	}
	tabWarm, err := warm.Table(context.Background(), cell, true)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tabWarm, tabCold) {
		t.Fatal("warm table differs from the cold build")
	}
	if hits := reg.Counter("cache.tables.hit").Value(); hits != 1 {
		t.Fatalf("cache.tables.hit = %d, want 1 (loaded table must serve the request)", hits)
	}
	if misses := reg.Counter("cache.tables.miss").Value(); misses != 0 {
		t.Fatalf("cache.tables.miss = %d, want 0", misses)
	}
}

// A session must never load state computed under a different
// configuration: the identity key moves instead.
func TestWarmIdentitySeparatesConfigurations(t *testing.T) {
	base := engine.New(engine.Config{PrecharGrid: 5})
	same := engine.New(engine.Config{PrecharGrid: 5})
	if base.WarmKey() != same.WarmKey() {
		t.Fatal("equal configurations must share a warm key")
	}
	grid := engine.New(engine.Config{PrecharGrid: 7})
	if base.WarmKey() == grid.WarmKey() {
		t.Fatal("a different pre-characterization grid must move the key")
	}
	res := engine.New(engine.Config{PrecharGrid: 5, CharCacheRes: 0.11})
	if base.WarmKey() == res.WarmKey() {
		t.Fatal("a different char-cache resolution must move the key")
	}
	noChars := engine.New(engine.Config{PrecharGrid: 5, CharCacheRes: -1})
	if base.WarmKey() == noChars.WarmKey() {
		t.Fatal("a disabled char cache must move the key")
	}

	// Path-mode runs set a stage-graph topology hash; per-net runs leave
	// it zero. The two populations condition characterization state
	// differently, so they must never share a warm-store key — and two
	// path runs over the same topology must.
	pathed := engine.New(engine.Config{PrecharGrid: 5})
	pathed.SetTopology(0x5eed)
	if base.WarmKey() == pathed.WarmKey() {
		t.Fatal("a path-mode topology hash must move the key off the per-net key")
	}
	samePath := engine.New(engine.Config{PrecharGrid: 5})
	samePath.SetTopology(0x5eed)
	if pathed.WarmKey() != samePath.WarmKey() {
		t.Fatal("equal topologies must share a warm key")
	}
	otherPath := engine.New(engine.Config{PrecharGrid: 5})
	otherPath.SetTopology(0x5eee)
	if pathed.WarmKey() == otherPath.WarmKey() {
		t.Fatal("a different topology must move the key")
	}
}

func TestLoadWarmMissAndNilStore(t *testing.T) {
	s := engine.New(engine.Config{PrecharGrid: 5})
	st, err := warmstore.Open(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if ok, err := s.LoadWarm(st); err != nil || ok {
		t.Fatalf("LoadWarm from empty store = (%v, %v), want clean miss", ok, err)
	}
	if ok, err := s.LoadWarm(nil); err != nil || ok {
		t.Fatalf("LoadWarm from nil store = (%v, %v), want clean miss", ok, err)
	}
	if err := s.SaveWarm(nil); err != nil {
		t.Fatalf("SaveWarm to nil store: %v", err)
	}
}
