package engine_test

import (
	"context"
	"testing"

	"repro/internal/clarinet"
	"repro/internal/core"
	"repro/internal/delaynoise"
	"repro/internal/device"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/workload"
)

func TestConfigDefaults(t *testing.T) {
	s := engine.New(engine.Config{})
	if s.Tech() == nil || s.Tech().Name != device.Default180().Name {
		t.Fatal("zero config must select the default technology")
	}
	if s.Lib() == nil || s.Metrics() == nil {
		t.Fatal("zero config must install a library and registry")
	}
	if s.Chars() == nil || s.ROMs() == nil {
		t.Fatal("caches must be on by default")
	}
	if _, err := s.Cell("INVX2"); err != nil {
		t.Fatalf("cell lookup failed: %v", err)
	}

	off := engine.New(engine.Config{CharCacheRes: -1, DisableROMCache: true})
	if off.Chars() != nil || off.ROMs() != nil {
		t.Fatal("cache opt-outs ignored")
	}

	lib := device.NewLibrary(device.Default180())
	reg := metrics.NewRegistry()
	explicit := engine.New(engine.Config{Lib: lib, Metrics: reg})
	if explicit.Lib() != lib || explicit.Metrics() != reg || explicit.Tech() != lib.Tech {
		t.Fatal("explicit library/registry not honored")
	}
}

func TestBindWiresCachesWithoutClobberingKnobs(t *testing.T) {
	s := engine.New(engine.Config{})
	opt := s.Bind(delaynoise.Options{Hold: delaynoise.HoldTransient, Align: delaynoise.AlignPrechar})
	if opt.Chars != s.Chars() || opt.ROMs != s.ROMs() || opt.Metrics != s.Metrics() {
		t.Fatal("Bind must wire the session caches and registry")
	}
	if opt.Hold != delaynoise.HoldTransient || opt.Align != delaynoise.AlignPrechar {
		t.Fatal("Bind must not clobber analysis knobs")
	}
}

// TestViewsShareOneSession is the tentpole invariant: a core.Analyzer
// and a clarinet.Tool built over the same session share the library,
// the registry, the characterization caches, and the alignment tables.
func TestViewsShareOneSession(t *testing.T) {
	s := engine.New(engine.Config{PrecharGrid: 5})
	an := core.NewAnalyzerSession(s)
	tool := clarinet.MustNew(nil, clarinet.Config{Session: s, Align: delaynoise.AlignReceiverInput})

	if an.Session() != s || tool.Session() != s {
		t.Fatal("views must expose the shared session")
	}
	if an.Metrics() != tool.Metrics() {
		t.Fatal("views must share one metrics registry")
	}
	if an.Lib != tool.Lib {
		t.Fatal("views must share one cell library")
	}

	// Work done through one view must be visible to the other: analyze a
	// net with the tool and check the shared registry and caches moved.
	gen := workload.NewGenerator(s.Lib(), workload.DefaultProfile(), 7)
	cases, err := gen.Population(1)
	if err != nil {
		t.Fatal(err)
	}
	r := tool.AnalyzeNet(context.Background(), "shared0", cases[0])
	if r.Err != nil {
		t.Fatalf("analysis failed: %v", r.Err)
	}
	if got := an.Metrics().Counter("nets.analyzed").Value(); got != 1 {
		t.Fatalf("core view sees nets.analyzed = %d, want 1", got)
	}

	// A table built through the session is shared by both views.
	recv := cases[0].Receiver
	tab1, err := s.Table(context.Background(), recv, true)
	if err != nil {
		t.Fatal(err)
	}
	tab2, err := an.Table(recv, true)
	if err != nil {
		t.Fatal(err)
	}
	if tab1 != tab2 {
		t.Fatal("table not shared across views")
	}
	if s.TableCount() != 1 {
		t.Fatalf("TableCount = %d, want 1", s.TableCount())
	}
	hits := an.Metrics().Counter("cache.tables.hit").Value()
	if hits != 1 {
		t.Fatalf("cache.tables.hit = %d, want 1", hits)
	}
}
