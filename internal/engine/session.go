// Package engine is the shared session core under the library facade
// (internal/core) and the batch tool (internal/clarinet). A Session owns
// everything both front ends used to duplicate: the technology, its cell
// library, the metrics registry, and the three single-flight caches —
// alignment pre-characterization tables, driver characterizations, and
// PRIMA reduced-order models.
//
// The front ends are thin views: core.Analyzer binds a Session to the
// paper's default per-net flow, clarinet.Tool fans a Session across a
// worker pool. Two views over one Session share every cache and counter;
// the Session is safe for concurrent use.
package engine

import (
	"context"

	"repro/internal/align"
	"repro/internal/delaynoise"
	"repro/internal/device"
	"repro/internal/memo"
	"repro/internal/metrics"
	"repro/internal/noiseerr"
)

// Metric-name constant table (enforced by noiselint/metricflow): the
// session's single-flight table cache reports its hit ratio under
// these names.
const (
	mCacheTablesHit  = "cache.tables.hit"
	mCacheTablesMiss = "cache.tables.miss"
)

// Config assembles a Session. The zero value is usable: it selects the
// default 0.18 um-class technology, a fresh library and registry, and
// enables every cache at its default resolution.
type Config struct {
	// Tech is the process technology (nil selects device.Default180).
	// Ignored when Lib is non-nil: the library's technology wins.
	Tech *device.Technology
	// Lib is the cell library (nil builds device.NewLibrary(Tech)).
	Lib *device.Library
	// Metrics receives run instrumentation (cache hit/miss counts,
	// simulation counters, per-stage timers). Nil installs a fresh
	// registry.
	Metrics *metrics.Registry
	// PrecharGrid is the exhaustive-search grid used when building
	// alignment tables on demand. Zero keeps align.DefaultConfig's grid.
	PrecharGrid int
	// CharCacheRes is the relative bucket resolution of the shared
	// driver-characterization cache (zero selects
	// delaynoise.DefaultCharBucketRes). Negative disables the cache.
	CharCacheRes float64
	// DisableROMCache turns off PRIMA reduced-order-model sharing.
	DisableROMCache bool
}

// tableKey identifies one receiver pre-characterization.
type tableKey struct {
	cell   string
	rising bool
}

// Session owns the shared state of an analysis run: technology, library,
// instrumentation, and the single-flight caches. Build one with New and
// hand it to as many front-end views as needed.
type Session struct {
	tech     *device.Technology
	lib      *device.Library
	metrics  *metrics.Registry
	grid     int
	topology uint64

	tables *memo.Cache[tableKey, *align.Table]
	chars  *delaynoise.CharCache
	roms   *delaynoise.ROMCache
}

// SetTopology records the workload's stage-graph topology hash in the
// session's warm-store identity (see WarmIdentity). Per-net runs leave
// it zero; path mode sets it to pathnoise.TopologyHash of the request's
// path set, so per-net and path runs address disjoint warm-store keys
// and can never serve each other a stale alignment-table snapshot. Set
// it before LoadWarm/SaveWarm; it is not synchronized against them.
func (s *Session) SetTopology(h uint64) { s.topology = h }

// New builds a session from cfg (see Config for zero-value defaults).
func New(cfg Config) *Session {
	lib := cfg.Lib
	if lib == nil {
		tech := cfg.Tech
		if tech == nil {
			tech = device.Default180()
		}
		lib = device.NewLibrary(tech)
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	s := &Session{
		tech:    lib.Tech,
		lib:     lib,
		metrics: reg,
		grid:    cfg.PrecharGrid,
		tables:  memo.New[tableKey, *align.Table](),
	}
	if cfg.CharCacheRes >= 0 {
		s.chars = delaynoise.NewCharCache(cfg.CharCacheRes, reg)
	}
	if !cfg.DisableROMCache {
		s.roms = delaynoise.NewROMCache(reg)
	}
	return s
}

// Tech returns the session's process technology.
func (s *Session) Tech() *device.Technology { return s.tech }

// Lib returns the session's cell library.
func (s *Session) Lib() *device.Library { return s.lib }

// Metrics returns the session's instrumentation registry.
func (s *Session) Metrics() *metrics.Registry { return s.metrics }

// Cell resolves a library cell by name.
func (s *Session) Cell(name string) (*device.Cell, error) {
	return s.lib.Cell(name)
}

// Chars returns the shared driver-characterization cache (nil when
// disabled by Config.CharCacheRes < 0).
func (s *Session) Chars() *delaynoise.CharCache { return s.chars }

// ROMs returns the shared reduced-order-model cache (nil when disabled).
func (s *Session) ROMs() *delaynoise.ROMCache { return s.roms }

// Bind wires the session's caches and registry into per-run analysis
// options, leaving every other knob untouched.
func (s *Session) Bind(opt delaynoise.Options) delaynoise.Options {
	opt.Chars = s.chars
	opt.ROMs = s.roms
	opt.Metrics = s.metrics
	return opt
}

// Table returns (building on first use, with single-flight semantics
// under concurrency) the alignment pre-characterization of a receiver
// cell and victim direction. The building corner searches run on the
// first caller's context.
func (s *Session) Table(ctx context.Context, recv *device.Cell, victimRising bool) (*align.Table, error) {
	tab, hit, err := s.tables.Do(tableKey{recv.Name, victimRising}, func() (*align.Table, error) {
		cfg := align.DefaultConfig(recv.Tech)
		if s.grid > 0 {
			cfg.Grid = s.grid
		}
		return align.PrecharacterizeContext(ctx, recv, victimRising, cfg)
	})
	if hit {
		s.metrics.Counter(mCacheTablesHit).Inc()
	} else {
		s.metrics.Counter(mCacheTablesMiss).Inc()
	}
	if err != nil {
		return nil, noiseerr.InStage(noiseerr.StageCharacterize, err)
	}
	return tab, nil
}

// TableCount reports how many alignment tables the session has built.
func (s *Session) TableCount() int { return s.tables.Len() }
