package engine

// Warm start: a Session's expensive derived state — alignment tables,
// driver characterizations, and PRIMA reductions — saved to and loaded
// from a content-addressed warmstore. The store key is derived from
// WarmIdentity, which captures everything that state depends on, so a
// session never loads state computed under a different technology,
// library, or characterization configuration: such state lives under a
// different key and reads as a miss.

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"

	"repro/internal/align"
	"repro/internal/delaynoise"
	"repro/internal/device"
	"repro/internal/warmstore"
)

// Identity is the warm-store address of a session's derived state. All
// fields are pure comparable values (floats carried as IEEE-754 bits),
// the same key discipline the memo caches follow and the cachekey
// analyzer enforces.
type Identity struct {
	Tech    string // technology name
	Library uint64 // fingerprint of the full library (cells, devices, Vdd)
	Grid    int    // pre-characterization search grid (0 = default)
	CharRes uint64 // char-cache bucket resolution, float bits (0 = cache off)
	// Topology is the stage-graph topology hash of a path-mode workload
	// (pathnoise.TopologyHash; 0 for per-net runs). Included so per-net
	// and path runs never share a warm-store key: the characterization
	// state a path run accumulates is conditioned on derived stage
	// inputs, and a key collision would let either mode seed the other
	// with alignment tables built for the wrong input population.
	Topology uint64
}

// WarmIdentity captures everything the session's cached state depends
// on. Two sessions with equal identities compute interchangeable tables,
// characterizations, and reductions.
func (s *Session) WarmIdentity() Identity {
	return Identity{
		Tech:     s.tech.Name,
		Library:  fingerprintLibrary(s.lib),
		Grid:     s.grid,
		CharRes:  math.Float64bits(s.chars.Res()),
		Topology: s.topology,
	}
}

// WarmKey returns the session's content address in a warmstore.
func (s *Session) WarmKey() string { return warmstore.Key(s.WarmIdentity()) }

// fingerprintLibrary hashes the complete electrical content of a cell
// library: technology parameters and, per cell in name order, topology
// and device sizes. Any change to any of it moves the fingerprint, so a
// warm store shared across library revisions can never serve stale
// characterizations. Floats are hashed via %#v (shortest round-trip
// formatting), which distinguishes any two distinct values.
func fingerprintLibrary(lib *device.Library) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%#v|", *lib.Tech)
	names := lib.Names()
	sort.Strings(names)
	for _, name := range names {
		cell := lib.Cells[name]
		fmt.Fprintf(h, "%s|%t|", name, cell.NonInverting)
		for _, f := range cell.FETs {
			fmt.Fprintf(h, "%s|%s|%s|%s|%x|%#v|", f.Name, f.D, f.G, f.S,
				math.Float64bits(f.W), *f.Params)
		}
	}
	return h.Sum64()
}

// warmTable is one persisted alignment pre-characterization, keyed the
// way Session.Table looks it up.
type warmTable struct {
	Cell   string
	Rising bool
	Table  *align.Table
}

// warmState is the persisted bundle: everything a cold session would
// have to recompute.
type warmState struct {
	Tables []warmTable
	Chars  *delaynoise.CharSnapshot
	ROMs   []delaynoise.ROMEntry
}

// SaveWarm persists the session's current derived state under its
// identity key. In-flight computations are omitted (they'll be in the
// next save); a nil store is a no-op.
func (s *Session) SaveWarm(st *warmstore.Store) error {
	if st == nil {
		return nil
	}
	state := warmState{Chars: s.chars.Snapshot(), ROMs: s.roms.Snapshot()}
	for k, tab := range s.tables.Snapshot() {
		state.Tables = append(state.Tables, warmTable{Cell: k.cell, Rising: k.rising, Table: tab})
	}
	return st.Save(s.WarmKey(), &state)
}

// LoadWarm seeds the session's caches from the store entry under its
// identity key, reporting whether one was found. Entries already
// resident (computed by this process) win over loaded ones; a missing
// or corrupt entry is a miss, not an error.
func (s *Session) LoadWarm(st *warmstore.Store) (bool, error) {
	var state warmState
	ok, err := st.Load(s.WarmKey(), &state)
	if err != nil || !ok {
		return false, err
	}
	for _, e := range state.Tables {
		if e.Table != nil {
			s.tables.Seed(tableKey{e.Cell, e.Rising}, e.Table)
		}
	}
	s.chars.Seed(state.Chars)
	s.roms.Seed(state.ROMs)
	return true, nil
}
