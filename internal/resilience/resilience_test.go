package resilience

import (
	"context"
	"testing"
	"time"
)

func TestQualityStrings(t *testing.T) {
	cases := []struct {
		q    Quality
		want string
	}{
		{QualityExact, "exact"},
		{QualityRescued, "rescued"},
		{QualityFallback, "fallback"},
	}
	for _, c := range cases {
		if got := c.q.String(); got != c.want {
			t.Errorf("Quality(%d).String() = %q, want %q", c.q, got, c.want)
		}
		if back := QualityFromString(c.want); back != c.q {
			t.Errorf("QualityFromString(%q) = %v, want %v", c.want, back, c.q)
		}
	}
	if QualityFromString("bogus") != QualityExact {
		t.Error("unknown quality names must map to exact (zero value)")
	}
}

func TestZeroPolicyDisablesEverything(t *testing.T) {
	var p Policy
	if p.Enabled() {
		t.Error("zero policy reports Enabled")
	}
	if rungs := p.Ladder(); len(rungs) != 0 {
		t.Errorf("zero policy ladder has %d rungs, want 0", len(rungs))
	}
	var r SolverRescue
	if r.Enabled() || r.DCEnabled() {
		t.Error("zero SolverRescue reports enabled")
	}
}

func TestDefaultPolicyLadder(t *testing.T) {
	p := DefaultPolicy()
	if !p.Enabled() {
		t.Fatal("default policy not enabled")
	}
	rungs := p.Ladder()
	names := make([]string, len(rungs))
	for i, r := range rungs {
		names[i] = r.Name
	}
	want := []string{"homotopy", "timestep", "prechar"}
	if len(names) != len(want) {
		t.Fatalf("ladder = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("ladder = %v, want %v", names, want)
		}
	}
	// Rung tuning: homotopy has DC aids but no halving; timestep keeps
	// the DC aids and adds halvings; defaults fill zero fields.
	if rungs[0].Solver.GminSteps != DefaultGminSteps || rungs[0].Solver.SourceSteps != DefaultSourceSteps {
		t.Errorf("homotopy rung solver = %+v", rungs[0].Solver)
	}
	if rungs[0].Solver.StepHalvings != 0 {
		t.Error("homotopy rung must not halve timesteps")
	}
	if rungs[1].Solver.StepHalvings != DefaultStepHalvings || !rungs[1].Solver.DCEnabled() {
		t.Errorf("timestep rung solver = %+v", rungs[1].Solver)
	}
	if !rungs[2].Prechar || rungs[2].Solver.Enabled() {
		t.Errorf("prechar rung = %+v", rungs[2])
	}
	// Quality mapping.
	if rungs[0].Quality() != QualityRescued || rungs[2].Quality() != QualityFallback {
		t.Error("rung quality mapping wrong")
	}
}

func TestFallbackOnlyPolicyMatchesLegacyBehavior(t *testing.T) {
	p := Policy{FallbackToPrechar: true}
	rungs := p.Ladder()
	if len(rungs) != 1 || !rungs[0].Prechar {
		t.Fatalf("fallback-only ladder = %+v, want single prechar rung", rungs)
	}
}

func TestTimestepOnlyPolicy(t *testing.T) {
	p := Policy{StepHalvings: 2}
	rungs := p.Ladder()
	if len(rungs) != 1 || rungs[0].Name != "timestep" {
		t.Fatalf("ladder = %+v", rungs)
	}
	if rungs[0].Solver.StepHalvings != 2 || rungs[0].Solver.DCEnabled() {
		t.Errorf("timestep-only rung solver = %+v", rungs[0].Solver)
	}
}

func TestExplicitTuningOverridesDefaults(t *testing.T) {
	p := Policy{DCHomotopy: true, GminSteps: 3, SourceSteps: 5, StepHalvings: 1}
	rungs := p.Ladder()
	if rungs[0].Solver.GminSteps != 3 || rungs[0].Solver.SourceSteps != 5 {
		t.Errorf("homotopy rung = %+v", rungs[0].Solver)
	}
	if rungs[1].Solver.StepHalvings != 1 {
		t.Errorf("timestep rung = %+v", rungs[1].Solver)
	}
}

func TestContextPlumbing(t *testing.T) {
	ctx := context.Background()
	if NetName(ctx) != "" {
		t.Error("untagged ctx has a net name")
	}
	if _, ok := SolverRescueFrom(ctx); ok {
		t.Error("untagged ctx has solver rescue")
	}
	ctx = WithNet(ctx, "net42")
	if NetName(ctx) != "net42" {
		t.Errorf("NetName = %q", NetName(ctx))
	}
	want := SolverRescue{GminSteps: 4, StepHalvings: 2}
	ctx = WithSolverRescue(ctx, want)
	got, ok := SolverRescueFrom(ctx)
	if !ok || got != want {
		t.Errorf("SolverRescueFrom = %+v, %v", got, ok)
	}
	// Tags survive derived contexts (the per-net timeout ctx).
	child, cancel := context.WithTimeout(ctx, time.Minute)
	defer cancel()
	if NetName(child) != "net42" {
		t.Error("net name lost through WithTimeout")
	}
	if r, ok := SolverRescueFrom(child); !ok || r != want {
		t.Error("solver rescue lost through WithTimeout")
	}
}
