// Package resilience defines the batch engine's failure-recovery policy:
// the convergence rescue ladder, per-net deadline budgets, and the
// quality levels that tag every surviving result. It sits below
// internal/clarinet (which executes the ladder) and above
// internal/nlsim (which implements the solver-level rungs), and carries
// solver rescue options through context so the deeply nested
// gatesim/align call chains need no signature changes.
//
// The ladder, in order of decreasing fidelity:
//
//  1. "homotopy": re-run the failing net with nlsim DC continuation
//     (gmin stepping, then source stepping) so the operating point that
//     defeated plain Newton is reached along an easier path.
//  2. "timestep": keep the homotopy aids and additionally let the
//     transient solver halve its timestep below the configured floor a
//     bounded number of times.
//  3. "prechar": fall back to precharacterized alignment — the bounded,
//     pessimistic answer the paper's flow degrades to when the
//     nonlinear search cannot be trusted (Config.FallbackToPrechar in
//     earlier revisions).
//
// A net that succeeds on the first pass is QualityExact; one saved by a
// solver rung is QualityRescued; one saved by the prechar rung is
// QualityFallback. Reports and metrics surface the level so downstream
// signoff can tell a tight answer from a degraded-but-bounded one.
package resilience

import (
	"context"
	"time"
)

// Quality grades how a net's result was obtained. The zero value is
// QualityExact so untouched reports read as first-pass results.
type Quality int

const (
	// QualityExact: the first-pass analysis converged; nothing degraded.
	QualityExact Quality = iota
	// QualityRescued: a solver rescue rung (homotopy or timestep
	// halving) converged after the first pass failed. Full-accuracy
	// model, harder numerical path.
	QualityRescued
	// QualityFallback: the prechar-alignment fallback produced the
	// result. Bounded and pessimistic rather than exact.
	QualityFallback
)

// String renders the quality level as it appears in reports and
// journals ("exact", "rescued", "fallback").
func (q Quality) String() string {
	switch q {
	case QualityRescued:
		return "rescued"
	case QualityFallback:
		return "fallback"
	}
	return "exact"
}

// QualityFromString is the inverse of String; unknown names map to
// QualityExact (the zero value), matching the journal's tolerance for
// records written by older builds.
func QualityFromString(s string) Quality {
	switch s {
	case "rescued":
		return QualityRescued
	case "fallback":
		return QualityFallback
	}
	return QualityExact
}

// SolverRescue configures the nlsim-level rescue aids. The zero value
// disables them all.
type SolverRescue struct {
	// GminSteps is the number of gmin-stepping continuation rungs for
	// the DC operating-point solve (each rung shrinks the artificial
	// diagonal conductance by 10x, warm-starting the next).
	GminSteps int
	// SourceSteps is the number of source-stepping continuation rungs
	// tried when gmin stepping fails: sources are ramped from 0 to
	// full strength in SourceSteps increments.
	SourceSteps int
	// StepHalvings bounds how many times the transient solver may
	// halve its timestep below the adaptive floor before giving up.
	StepHalvings int
}

// Enabled reports whether any rescue aid is configured.
func (r SolverRescue) Enabled() bool {
	return r.GminSteps > 0 || r.SourceSteps > 0 || r.StepHalvings > 0
}

// DCEnabled reports whether a DC continuation aid is configured.
func (r SolverRescue) DCEnabled() bool { return r.GminSteps > 0 || r.SourceSteps > 0 }

// Policy is the batch engine's resilience configuration: which rescue
// rungs to climb on a convergence failure and how much wall-clock each
// net may spend. The zero value disables everything (first-pass result
// or failure, no per-net deadline) and reproduces the pre-resilience
// engine behavior.
type Policy struct {
	// DCHomotopy enables the solver homotopy rung (gmin stepping then
	// source stepping for the DC solve).
	DCHomotopy bool
	// GminSteps, SourceSteps, StepHalvings tune the solver rungs; zero
	// values take the defaults (8, 8, 4) when the corresponding rung
	// is enabled.
	GminSteps    int
	SourceSteps  int
	StepHalvings int
	// FallbackToPrechar enables the final, always-converging prechar
	// alignment rung (the generalization of the former
	// clarinet.Config.FallbackToPrechar flag).
	FallbackToPrechar bool
	// NetTimeout bounds each net's analysis, rescue attempts included.
	// Zero means no per-net deadline.
	NetTimeout time.Duration
}

// Default rung sizes, applied when a rung is enabled with zero tuning.
const (
	DefaultGminSteps    = 8
	DefaultSourceSteps  = 8
	DefaultStepHalvings = 4
)

// DefaultPolicy is the recommended production configuration: the full
// ladder with default rung sizes and no per-net deadline (deadlines
// depend on the deployment's latency budget, so they stay opt-in).
func DefaultPolicy() Policy {
	return Policy{
		DCHomotopy:        true,
		StepHalvings:      DefaultStepHalvings,
		FallbackToPrechar: true,
	}
}

// Rung is one step of the rescue ladder, produced by Policy.Ladder in
// the order it should be attempted.
type Rung struct {
	// Name identifies the rung in metrics ("rescue.<name>" counters)
	// and logs: "homotopy", "timestep", or "prechar".
	Name string
	// Solver carries the nlsim rescue aids for this rung; zero when
	// the rung does not involve re-running the solver (prechar).
	Solver SolverRescue
	// Prechar marks the prechar-alignment fallback rung.
	Prechar bool
}

// Quality returns the quality level a net earns when this rung saves it.
func (r Rung) Quality() Quality {
	if r.Prechar {
		return QualityFallback
	}
	return QualityRescued
}

// Ladder expands the policy into the ordered rescue rungs to climb when
// a net's first pass fails with a convergence error. An empty ladder
// means failures surface immediately.
func (p Policy) Ladder() []Rung {
	gmin, src, halve := p.GminSteps, p.SourceSteps, p.StepHalvings
	if gmin == 0 {
		gmin = DefaultGminSteps
	}
	if src == 0 {
		src = DefaultSourceSteps
	}
	if halve == 0 {
		halve = DefaultStepHalvings
	}
	var rungs []Rung
	if p.DCHomotopy {
		rungs = append(rungs, Rung{
			Name:   "homotopy",
			Solver: SolverRescue{GminSteps: gmin, SourceSteps: src},
		})
		rungs = append(rungs, Rung{
			Name:   "timestep",
			Solver: SolverRescue{GminSteps: gmin, SourceSteps: src, StepHalvings: halve},
		})
	} else if p.StepHalvings > 0 {
		rungs = append(rungs, Rung{
			Name:   "timestep",
			Solver: SolverRescue{StepHalvings: halve},
		})
	}
	if p.FallbackToPrechar {
		rungs = append(rungs, Rung{Name: "prechar", Prechar: true})
	}
	return rungs
}

// Enabled reports whether the policy has any rescue rung at all.
func (p Policy) Enabled() bool {
	return p.DCHomotopy || p.StepHalvings > 0 || p.FallbackToPrechar
}

// ctxKey is the private type for this package's context values.
type ctxKey int

const (
	netNameKey ctxKey = iota
	solverRescueKey
)

// WithNet tags ctx with the name of the net being analyzed. Fault
// injection and diagnostics read it back with NetName; the analysis
// code itself never depends on it.
func WithNet(ctx context.Context, name string) context.Context {
	return context.WithValue(ctx, netNameKey, name)
}

// NetName returns the net name tagged by WithNet, or "".
func NetName(ctx context.Context) string {
	name, _ := ctx.Value(netNameKey).(string)
	return name
}

// WithSolverRescue arms the nlsim rescue aids for every solve under
// ctx. Carrying the options through context (rather than through every
// Options struct between clarinet and nlsim) keeps the
// gatesim/align/golden signatures untouched: only the solver itself
// consults the value.
func WithSolverRescue(ctx context.Context, r SolverRescue) context.Context {
	return context.WithValue(ctx, solverRescueKey, r)
}

// SolverRescueFrom returns the rescue aids armed by WithSolverRescue
// and whether any were set.
func SolverRescueFrom(ctx context.Context) (SolverRescue, bool) {
	r, ok := ctx.Value(solverRescueKey).(SolverRescue)
	return r, ok
}
