package memo

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestDoCachesValue(t *testing.T) {
	c := New[string, int]()
	calls := 0
	fn := func() (int, error) { calls++; return 42, nil }

	v, hit, err := c.Do("k", fn)
	if err != nil || v != 42 || hit {
		t.Fatalf("first Do = (%d, %v, %v)", v, hit, err)
	}
	v, hit, err = c.Do("k", fn)
	if err != nil || v != 42 || !hit {
		t.Fatalf("second Do = (%d, %v, %v)", v, hit, err)
	}
	if calls != 1 {
		t.Fatalf("fn called %d times", calls)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestSingleFlight(t *testing.T) {
	c := New[int, int]()
	var calls atomic.Int64
	gate := make(chan struct{})
	const n = 16
	var wg sync.WaitGroup
	hits := make([]bool, n)
	vals := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, hit, err := c.Do(7, func() (int, error) {
				calls.Add(1)
				<-gate // hold the computation open so everyone piles up
				return 99, nil
			})
			if err != nil {
				t.Error(err)
			}
			hits[i], vals[i] = hit, v
		}(i)
	}
	close(gate)
	wg.Wait()
	if got := calls.Load(); got != 1 {
		t.Fatalf("fn executed %d times, want 1", got)
	}
	nHits := 0
	for i := range hits {
		if vals[i] != 99 {
			t.Fatalf("caller %d got %d", i, vals[i])
		}
		if hits[i] {
			nHits++
		}
	}
	if nHits != n-1 {
		t.Fatalf("%d hits for %d callers", nHits, n)
	}
}

func TestErrorNotCached(t *testing.T) {
	c := New[string, int]()
	boom := errors.New("boom")
	calls := 0
	_, _, err := c.Do("k", func() (int, error) { calls++; return 0, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if c.Len() != 0 {
		t.Fatal("failed entry must not stay resident")
	}
	v, hit, err := c.Do("k", func() (int, error) { calls++; return 5, nil })
	if err != nil || v != 5 || hit {
		t.Fatalf("retry = (%d, %v, %v)", v, hit, err)
	}
	if calls != 2 {
		t.Fatalf("fn called %d times", calls)
	}
}

func TestGet(t *testing.T) {
	c := New[string, string]()
	if _, ok := c.Get("missing"); ok {
		t.Fatal("Get on empty cache")
	}
	c.Do("k", func() (string, error) { return "v", nil })
	v, ok := c.Get("k")
	if !ok || v != "v" {
		t.Fatalf("Get = (%q, %v)", v, ok)
	}
}

func TestNilCache(t *testing.T) {
	var c *Cache[string, int]
	v, hit, err := c.Do("k", func() (int, error) { return 3, nil })
	if err != nil || v != 3 || hit {
		t.Fatalf("nil Do = (%d, %v, %v)", v, hit, err)
	}
	if c.Len() != 0 {
		t.Fatal("nil Len")
	}
	if _, ok := c.Get("k"); ok {
		t.Fatal("nil Get")
	}
}
