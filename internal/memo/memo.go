// Package memo provides a concurrency-safe memoization cache with
// single-flight semantics: when several goroutines request the same key
// at once, exactly one computes the value and the rest wait for it. The
// analysis engine uses it to share receiver pre-characterization tables,
// driver characterizations, and PRIMA reduced-order models across
// concurrently analyzed nets.
package memo

import "sync"

// entry is one key's slot. done is closed once the computation finishes;
// val/err are immutable afterwards.
type entry[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// Cache memoizes the results of a keyed computation. The zero value is
// not usable; construct with New. All methods are safe for concurrent
// use and tolerate a nil receiver (a nil cache never caches).
type Cache[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]*entry[V]
}

// New returns an empty cache.
func New[K comparable, V any]() *Cache[K, V] {
	return &Cache[K, V]{m: map[K]*entry[V]{}}
}

// Do returns the cached value for key, computing it with fn on first
// use. Concurrent callers of the same key share one fn execution; hit
// reports whether this caller reused (or waited on) another's work.
// Failed computations are not cached: the waiting callers receive the
// error, and later callers retry fn.
func (c *Cache[K, V]) Do(key K, fn func() (V, error)) (v V, hit bool, err error) {
	if c == nil {
		v, err = fn()
		return v, false, err
	}
	c.mu.Lock()
	if e, ok := c.m[key]; ok {
		c.mu.Unlock()
		<-e.done
		return e.val, true, e.err
	}
	e := &entry[V]{done: make(chan struct{})}
	c.m[key] = e
	c.mu.Unlock()

	e.val, e.err = fn()
	if e.err != nil {
		// Drop the failed entry so later callers retry, but only after
		// publishing the error to current waiters.
		c.mu.Lock()
		delete(c.m, key)
		c.mu.Unlock()
	}
	close(e.done)
	return e.val, false, e.err
}

// Get returns the cached value for key if a completed, successful
// computation exists. It does not wait for in-flight computations.
func (c *Cache[K, V]) Get(key K) (v V, ok bool) {
	if c == nil {
		return v, false
	}
	c.mu.Lock()
	e, exists := c.m[key]
	c.mu.Unlock()
	if !exists {
		return v, false
	}
	select {
	case <-e.done:
		if e.err != nil {
			return v, false
		}
		return e.val, true
	default:
		return v, false
	}
}

// Snapshot copies out every completed, successful entry — the state
// worth persisting to a warm-start store. In-flight and failed entries
// are skipped. The returned map is the caller's; values are shared (the
// cache's values are treated as immutable everywhere).
func (c *Cache[K, V]) Snapshot() map[K]V {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	entries := make(map[K]*entry[V], len(c.m))
	for k, e := range c.m {
		entries[k] = e
	}
	c.mu.Unlock()
	out := make(map[K]V, len(entries))
	for k, e := range entries {
		select {
		case <-e.done:
			if e.err == nil {
				out[k] = e.val
			}
		default:
		}
	}
	return out
}

// Seed installs a precomputed value for key — the warm-start inverse of
// Snapshot. An existing entry (completed or in flight) wins: seeding
// never clobbers fresher work.
func (c *Cache[K, V]) Seed(key K, val V) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.m[key]; ok {
		return
	}
	e := &entry[V]{done: make(chan struct{}), val: val}
	close(e.done)
	c.m[key] = e
}

// Len returns the number of resident entries (including in-flight ones).
func (c *Cache[K, V]) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}
