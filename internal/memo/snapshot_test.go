package memo_test

import (
	"errors"
	"testing"

	"repro/internal/memo"
)

func TestSnapshotExportsCompletedSuccesses(t *testing.T) {
	c := memo.New[string, int]()
	if _, _, err := c.Do("a", func() (int, error) { return 1, nil }); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Do("b", func() (int, error) { return 2, nil }); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Do("bad", func() (int, error) { return 0, errors.New("boom") }); err == nil {
		t.Fatal("want error")
	}

	// An in-flight computation must be omitted, not waited for.
	enter := make(chan struct{})
	release := make(chan struct{})
	go c.Do("slow", func() (int, error) { close(enter); <-release; return 3, nil })
	<-enter

	snap := c.Snapshot()
	close(release)
	if len(snap) != 2 || snap["a"] != 1 || snap["b"] != 2 {
		t.Fatalf("Snapshot = %v, want {a:1 b:2}", snap)
	}
}

func TestSeedInstallsWithoutClobbering(t *testing.T) {
	c := memo.New[string, int]()
	c.Seed("warm", 10)
	v, hit, err := c.Do("warm", func() (int, error) {
		t.Fatal("seeded entry must not recompute")
		return 0, nil
	})
	if err != nil || !hit || v != 10 {
		t.Fatalf("Do on seeded key = (%d, %v, %v), want hit 10", v, hit, err)
	}

	// Resident entries win over a later seed.
	if _, _, err := c.Do("res", func() (int, error) { return 1, nil }); err != nil {
		t.Fatal(err)
	}
	c.Seed("res", 99)
	if v, _, _ := c.Do("res", nil); v != 1 {
		t.Fatalf("Seed clobbered a resident entry: got %d, want 1", v)
	}
}

func TestSnapshotSeedNilCache(t *testing.T) {
	var c *memo.Cache[string, int]
	if c.Snapshot() != nil {
		t.Fatal("nil Snapshot must be nil")
	}
	c.Seed("k", 1) // must not panic
}
