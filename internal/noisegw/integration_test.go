package noisegw

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"testing"
	"time"

	"repro/internal/clarinet"
	"repro/internal/device"
	"repro/internal/noised"
	"repro/internal/workload"
)

// realBody generates an n-net workload against the default library —
// the exact bytes netgen would write.
func realBody(t testing.TB, n int) []byte {
	t.Helper()
	lib := device.NewLibrary(device.Default180())
	gen := workload.NewGenerator(lib, workload.DefaultProfile(), 7)
	cases, err := gen.Population(n)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("net%02d", i)
	}
	var buf bytes.Buffer
	if err := workload.Save(&buf, lib.Tech.Name, names, cases); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func realReplica(t testing.TB) *httptest.Server {
	t.Helper()
	// Fast heartbeats keep the gateway's stall watchdog fed while the
	// real engine characterizes (tens of seconds under -race).
	s, err := noised.New(noised.Config{Heartbeat: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// canonical renders records sorted by net as one JSON blob — the merge
// order varies with scheduling, the content must not.
func canonical(t testing.TB, recs []clarinet.JournalRecord) []byte {
	t.Helper()
	sort.Slice(recs, func(i, j int) bool { return recs[i].Net < recs[j].Net })
	b, err := json.Marshal(recs)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestGatewayMatchesSingleReplica is the result-integrity contract: a
// batch scattered over real noised replicas and merged by the gateway
// must produce byte-identical analysis records to the same batch run on
// one replica directly. The engine is deterministic per net, so any
// divergence is a gateway bug.
func TestGatewayMatchesSingleReplica(t *testing.T) {
	if testing.Short() {
		t.Skip("real engine analysis")
	}
	body := realBody(t, 4)

	// Golden: one replica, direct.
	direct := realReplica(t)
	resp, err := http.Post(direct.URL+"/v1/analyze", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	golden, gsum := readGatewayStream(t, resp.Body)
	resp.Body.Close()
	if gsum == nil || gsum.OK != 4 {
		t.Fatalf("golden summary = %+v", gsum)
	}

	// Scattered: two replicas behind the gateway.
	_, ts := newTestGateway(t, func(cfg *Config) {
		cfg.Replicas = []string{realReplica(t).URL, realReplica(t).URL}
		// Real analysis is slow (and ~10x slower under -race); the
		// 1 s replica heartbeats are the liveness signal, so a stall
		// window far above the heartbeat period never false-trips.
		cfg.StallTimeout = 2 * time.Minute
	})
	recs, sum := postAnalyze(t, ts.URL, body)
	if sum == nil || sum.Nets != 4 || sum.OK != 4 {
		t.Fatalf("gateway summary = %+v", sum)
	}
	if got, want := canonical(t, recs), canonical(t, golden); !bytes.Equal(got, want) {
		t.Fatalf("merged records diverge from the single-replica run:\n got %s\nwant %s", got, want)
	}
}
