package noisegw

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/clarinet"
	"repro/internal/colblob"
	"repro/internal/noised"
	"repro/internal/noiseerr"
	"repro/internal/workload"
)

// errNoReplicas sheds a request when every replica is ejected: the
// fleet is down, and queueing the work would only mask it.
var errNoReplicas = errors.New("noisegw: no healthy replicas")

// Health is the gateway /healthz payload.
type Health struct {
	Status          string          `json:"status"`
	Instance        string          `json:"instance"`
	Build           buildinfo.Info  `json:"build"`
	UptimeS         float64         `json:"uptime_s"`
	Draining        bool            `json:"draining"`
	Inflight        int64           `json:"inflight"`
	QueueDepth      int64           `json:"queue_depth"`
	ReplicasHealthy int             `json:"replicas_healthy"`
	Replicas        []replicaHealth `json:"replicas"`
}

// retryAfterSeconds renders the Retry-After hint, rounding up so a
// sub-second hint does not collapse to "0".
func (g *Gateway) retryAfterSeconds() string {
	secs := int64((g.cfg.RetryAfter + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

// unavailable sheds one request: 503 with the Retry-After backoff hint.
func (g *Gateway) unavailable(w http.ResponseWriter, reason string) {
	w.Header().Set("Retry-After", g.retryAfterSeconds())
	http.Error(w, reason, http.StatusServiceUnavailable)
}

// analyzeOptions are the validated per-request knobs. The analysis
// options are forwarded to the replicas verbatim; only the timeout and
// request ID have gateway-level meaning.
type analyzeOptions struct {
	forward   url.Values // hold/align/rescue/net_timeout/timeout, as received
	timeout   time.Duration
	requestID string
}

// parseAnalyzeOptions validates the query parameters the gateway
// forwards, failing fast with 400 instead of scattering a request every
// replica would reject.
func (g *Gateway) parseAnalyzeOptions(r *http.Request) (analyzeOptions, error) {
	q := r.URL.Query()
	opt := analyzeOptions{forward: url.Values{}}
	if v := q.Get("hold"); v != "" {
		if _, err := clarinet.ParseHold(v); err != nil {
			return opt, err
		}
		opt.forward.Set("hold", v)
	}
	if v := q.Get("align"); v != "" {
		if _, err := clarinet.ParseAlign(v); err != nil {
			return opt, err
		}
		opt.forward.Set("align", v)
	}
	if v := q.Get("rescue"); v != "" {
		if _, err := strconv.ParseBool(v); err != nil {
			return opt, noiseerr.Invalidf("noisegw: bad rescue %q: %w", v, err)
		}
		opt.forward.Set("rescue", v)
	}
	if v := q.Get("net_timeout"); v != "" {
		if d, err := time.ParseDuration(v); err != nil || d < 0 {
			return opt, noiseerr.Invalidf("noisegw: bad net_timeout %q", v)
		}
		opt.forward.Set("net_timeout", v)
	}
	if v := q.Get("timeout"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d < 0 {
			return opt, noiseerr.Invalidf("noisegw: bad timeout %q", v)
		}
		opt.timeout = d
		opt.forward.Set("timeout", v)
	}
	if limit := g.cfg.MaxRequestTimeout; limit > 0 {
		if opt.timeout <= 0 || opt.timeout > limit {
			opt.timeout = limit
		}
	}
	opt.requestID = r.Header.Get("X-Request-ID")
	if v := q.Get("request_id"); v != "" {
		opt.requestID = v
	}
	if opt.requestID != "" && !noised.ValidRequestID(opt.requestID) {
		return opt, noiseerr.Invalidf("noisegw: bad request_id %q", opt.requestID)
	}
	return opt, nil
}

// streamWriter mirrors the noised response encodings so noisectl and
// client.Client speak to a gateway unchanged.
type streamWriter interface {
	record(rec clarinet.JournalRecord) error
	heartbeat() error
	summary(sum *noised.Summary) error
}

type ndjsonStream struct{ enc *json.Encoder }

func (s ndjsonStream) record(rec clarinet.JournalRecord) error { return s.enc.Encode(rec) }
func (s ndjsonStream) heartbeat() error {
	return s.enc.Encode(noised.StreamLine{Heartbeat: true})
}
func (s ndjsonStream) summary(sum *noised.Summary) error {
	return s.enc.Encode(noised.StreamLine{Summary: sum})
}

// colblobStream re-encodes the merged records on a fresh binary writer:
// the per-replica streams each carried their own chained compression
// state, so the gateway cannot splice their frames — it decodes and
// re-encodes, which also normalizes the client's view.
type colblobStream struct {
	w   io.Writer
	rw  clarinet.RecordWriter
	buf []byte
}

func newColblobStream(w io.Writer) *colblobStream {
	return &colblobStream{w: w, rw: clarinet.Binary.NewWriter(w)}
}

func (s *colblobStream) record(rec clarinet.JournalRecord) error {
	return s.rw.WriteRecord(rec)
}

func (s *colblobStream) heartbeat() error {
	s.buf = colblob.AppendFrame(s.buf[:0], colblob.FrameHeartbeat, nil)
	_, err := s.w.Write(s.buf)
	return err
}

func (s *colblobStream) summary(sum *noised.Summary) error {
	payload, err := json.Marshal(sum)
	if err != nil {
		return err
	}
	s.buf = colblob.AppendFrame(s.buf[:0], colblob.FrameSummary, payload)
	_, err = s.w.Write(s.buf)
	return err
}

func negotiateStream(r *http.Request, w http.ResponseWriter) (streamWriter, string) {
	if strings.Contains(r.Header.Get("Accept"), clarinet.ContentTypeColblob) {
		return newColblobStream(w), clarinet.ContentTypeColblob
	}
	return ndjsonStream{enc: json.NewEncoder(w)}, clarinet.ContentTypeNDJSON
}

// handleAnalyze is POST /v1/analyze: validation, admission, scatter,
// and the merge loop that streams finalized records to the client.
func (g *Gateway) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	g.reg.Counter(mGwRequests).Inc()
	if g.adm.draining() {
		g.reg.Counter(mGwRejectedDraining).Inc()
		g.unavailable(w, "draining")
		return
	}
	opt, err := g.parseAnalyzeOptions(r)
	if err != nil {
		g.reg.Counter(mGwRejectedValidation).Inc()
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	// Structural parse only: the gateway shards cases without resolving
	// them against a device library — validation against the technology
	// stays at the replicas, which own the engine.
	r.Body = http.MaxBytesReader(w, r.Body, g.cfg.MaxBodyBytes)
	var file workload.FileJSON
	if err := json.NewDecoder(r.Body).Decode(&file); err != nil {
		g.reg.Counter(mGwRejectedValidation).Inc()
		http.Error(w, fmt.Sprintf("noisegw: decode: %v", err), http.StatusBadRequest)
		return
	}
	if len(file.Cases) == 0 {
		g.reg.Counter(mGwRejectedValidation).Inc()
		http.Error(w, "noisegw: empty case set", http.StatusBadRequest)
		return
	}
	if len(file.Cases) > g.cfg.MaxNets {
		g.reg.Counter(mGwRejectedValidation).Inc()
		http.Error(w, fmt.Sprintf("noisegw: %d nets exceeds the limit %d", len(file.Cases), g.cfg.MaxNets),
			http.StatusRequestEntityTooLarge)
		return
	}
	seen := make(map[string]bool, len(file.Cases))
	for _, c := range file.Cases {
		if c.Name == "" || seen[c.Name] {
			g.reg.Counter(mGwRejectedValidation).Inc()
			http.Error(w, fmt.Sprintf("noisegw: missing or duplicate net name %q", c.Name), http.StatusBadRequest)
			return
		}
		seen[c.Name] = true
	}

	switch err := g.adm.acquire(r.Context()); err {
	case nil:
		defer g.adm.release()
	case errQueueFull, errDraining:
		g.reg.Counter(mGwRejectedQueue).Inc()
		g.unavailable(w, err.Error())
		return
	default:
		return // the client went away while queued
	}

	ctx := r.Context()
	var cancel context.CancelFunc
	if opt.timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, opt.timeout)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	defer cancel()

	run := g.newRun(ctx, cancel, file.Technology, opt.forward, opt.requestID)
	if err := run.scatter(file.Cases); err != nil {
		g.reg.Counter(mGwRejectedNoReplicas).Inc()
		g.unavailable(w, err.Error())
		return
	}

	stream, contentType := negotiateStream(r, w)
	w.Header().Set("Content-Type", contentType)
	w.Header().Set("Cache-Control", "no-store")
	w.Header().Set(noised.InstanceHeader, g.instance)
	if opt.requestID != "" {
		w.Header().Set("X-Request-ID", opt.requestID)
	}
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)
	rc.Flush()

	sum := noised.Summary{RequestID: opt.requestID, Nets: len(file.Cases)}
	writeOK := true
	var hbC <-chan time.Time
	var hb *time.Ticker
	if g.cfg.Heartbeat > 0 {
		hb = time.NewTicker(g.cfg.Heartbeat)
		defer hb.Stop()
		hbC = hb.C
	}
merge:
	for {
		select {
		case rec, ok := <-run.sink:
			if !ok {
				break merge
			}
			if rec.Error == "" {
				sum.OK++
			} else {
				sum.Failed++
			}
			if !writeOK {
				continue // drain the merge after a broken pipe
			}
			if err := stream.record(rec); err != nil {
				writeOK = false
				cancel() // stop the scatter for a client that is gone
				continue
			}
			rc.Flush()
			if hb != nil {
				hb.Reset(g.cfg.Heartbeat)
			}
		case <-hbC:
			if !writeOK {
				continue
			}
			if err := stream.heartbeat(); err != nil {
				writeOK = false
				cancel()
				continue
			}
			rc.Flush()
		}
	}
	if !writeOK {
		return
	}
	// Every worker has exited: nets still unfinalized are definitively
	// incomplete — no late stream can contradict the records we emit
	// now. Canceled when our own context died, reshard failures
	// otherwise.
	for _, c := range file.Cases {
		if run.finished(c.Name) {
			continue
		}
		g.reg.Counter(mGwNetsUnassigned).Inc()
		rec := unfinishedRecord(c.Name, ctx)
		if rec.Class == "canceled" {
			sum.Canceled++
		} else {
			sum.Failed++
		}
		if err := stream.record(rec); err != nil {
			return
		}
	}
	sum.ElapsedMS = time.Since(run.start).Milliseconds()
	sum.Deadline = ctx.Err() == context.DeadlineExceeded
	sum.Draining = g.adm.draining()
	if err := stream.summary(&sum); err == nil {
		rc.Flush()
	}
}

// unfinishedRecord renders the terminal record of a net no replica
// finished: a canceled placeholder when the run itself was cut short,
// an internal reshard failure when the recovery budget ran out.
func unfinishedRecord(net string, ctx context.Context) clarinet.JournalRecord {
	var err error
	if ctx.Err() != nil {
		err = noiseerr.Canceled(fmt.Errorf("noisegw: run canceled before net completed: %w", ctx.Err()))
	} else {
		err = noiseerr.InStage(noiseerr.StageReshard,
			noiseerr.Internalf("noisegw: reshard budget exhausted with no healthy replica finishing the net"))
	}
	return clarinet.ToWireRecord(clarinet.NetReport{Name: net, Err: noiseerr.WithNet(net, err)})
}

func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	snap := g.reg.Snapshot()
	replicas := g.set.health()
	healthy := 0
	for _, rh := range replicas {
		if rh.Healthy {
			healthy++
		}
	}
	h := Health{
		Status:          "ok",
		Instance:        g.instance,
		Build:           buildinfo.Current(),
		UptimeS:         time.Since(g.started).Seconds(),
		Draining:        g.adm.draining(),
		Inflight:        snap.Gauges[mGwInflight],
		QueueDepth:      snap.Gauges[mGwQueueDepth],
		ReplicasHealthy: healthy,
		Replicas:        replicas,
	}
	switch {
	case h.Draining:
		h.Status = "draining"
	case healthy == 0:
		h.Status = "no-replicas"
	case healthy < len(replicas):
		h.Status = "degraded"
	}
	w.Header().Set(noised.InstanceHeader, g.instance)
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(h)
}

func (g *Gateway) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set(noised.InstanceHeader, g.instance)
	if g.adm.draining() {
		g.unavailable(w, "draining")
		return
	}
	if len(g.set.healthyNames()) == 0 {
		g.unavailable(w, errNoReplicas.Error())
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	g.reg.Snapshot().WriteJSON(w)
}
