package noisegw

import (
	"context"
	"errors"
	"log"
	"net"
	"net/http"
	"time"
)

// Serve accepts connections on ln until ctx is canceled, then drains
// gracefully: the gateway flips into drain mode (/readyz answers 503,
// new analyses are refused with Retry-After), in-flight merges run to
// completion, and only when they finish — or the DrainTimeout budget
// expires — does Serve return. The replica probe loop runs for the
// gateway's lifetime under the same ctx.
func (g *Gateway) Serve(ctx context.Context, ln net.Listener) error {
	probeCtx, probeStop := context.WithCancel(ctx)
	defer probeStop()
	probeDone := make(chan struct{})
	go func() {
		defer close(probeDone)
		g.set.probeLoop(probeCtx)
	}()
	defer func() { <-probeDone }()

	srv := &http.Server{
		Handler:           g.mux,
		ReadHeaderTimeout: 10 * time.Second,
	}
	errCh := make(chan error, 1)
	// The acceptor is bounded by srv's lifetime: Serve returns once
	// Shutdown or Close runs below, the buffered send never blocks, and
	// both drain branches join it by receiving from errCh.
	//lint:ignore noiselint/goleak bounded by srv.Shutdown/Close below; errCh is buffered and drained on both exits
	go func() { errCh <- srv.Serve(ln) }()
	select {
	case err := <-errCh:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case <-ctx.Done():
	}
	g.Drain()
	log.Printf("draining in-flight requests (budget %v)", g.cfg.DrainTimeout)
	// The run context is already canceled; the drain needs its own
	// deadline that is not.
	dctx, cancel := context.WithTimeout(context.WithoutCancel(ctx), g.cfg.DrainTimeout)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		log.Printf("drain budget exhausted: %v; closing remaining connections", err)
		srv.Close()
		return err
	}
	return nil
}
