package noisegw

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clarinet"
	"repro/internal/noised"
	"repro/internal/workload"
)

// The coordinator. One run fans a request's cases out as per-replica
// shard streams, merges their records into a single sink channel, and
// recovers from failures by re-sharding unfinished nets onto survivors.
//
// Exactly-once delivery rests on one invariant: a net is finalized (its
// record sent to the sink) at most once, under r.mu, and only by a real
// outcome — success or a definitive failure. Canceled placeholders (the
// records a replica emits for nets cut off mid-run) never finalize, so
// the nets they name stay eligible for the reshard that completes them.
// Replays — from replica-side journal resume after a shed retry, or
// from a hedged duplicate stream — hit the done map and drop. Workers
// never fabricate failure records for nets they could not finish; the
// handler emits those only after every worker has exited, when no
// late stream can contradict them.

// shedJitter is the randomness seam of the shed backoff; tests pin it.
var shedJitter = rand.Float64

// run is the per-request coordinator state.
type run struct {
	g      *Gateway
	ctx    context.Context
	cancel context.CancelFunc
	start  time.Time

	tech      string     // technology echoed into shard bodies
	query     url.Values // forwarded analysis options (no request_id)
	requestID string     // the client's request_id ("" = unjournaled)

	// sink carries finalized records to the handler's merge loop. It is
	// closed by the closer goroutine once every worker has exited.
	sink chan clarinet.JournalRecord

	mu   sync.Mutex
	done map[string]bool // net -> finalized

	wg       sync.WaitGroup
	reshards atomic.Int64
	hedges   atomic.Int64
}

func (g *Gateway) newRun(ctx context.Context, cancel context.CancelFunc, tech string, query url.Values, requestID string) *run {
	return &run{
		g:         g,
		ctx:       ctx,
		cancel:    cancel,
		start:     time.Now(),
		tech:      tech,
		query:     query,
		requestID: requestID,
		sink:      make(chan clarinet.JournalRecord, 64),
		done:      map[string]bool{},
	}
}

// scatter shards the cases over the currently healthy replicas and
// spawns one worker per shard, plus the closer that ends the sink when
// the last worker — initial, reshard, or hedge — exits.
func (r *run) scatter(cases []workload.CaseJSON) error {
	names := r.g.set.healthyNames()
	if len(names) == 0 {
		return errNoReplicas
	}
	for name, shard := range shardCases(cases, names) {
		r.spawn(name, shard, 0)
	}
	// The closer is bounded by the workers, which are bounded by r.ctx:
	// every worker path returns once the context dies, wg drains, and
	// the close lets the handler's merge loop finish.
	//lint:ignore noiselint/goleak joins r.wg, whose workers all exit once r.ctx dies; the close unblocks the merge loop
	go func() {
		r.wg.Wait()
		close(r.sink)
	}()
	return nil
}

func (r *run) spawn(replica string, cases []workload.CaseJSON, attempt int) {
	r.wg.Add(1)
	//lint:ignore noiselint/goleak runShard defers wg.Done and every blocking path inside it selects on r.ctx; the closer joins the wg
	go r.runShard(replica, cases, attempt)
}

// runShard drives one shard against one replica to completion, then
// re-shards whatever remains unfinished. attempt counts the reshard
// hops this slice of work has taken.
func (r *run) runShard(replica string, cases []workload.CaseJSON, attempt int) {
	defer r.wg.Done()
	leftover, avoid := r.streamShard(replica, cases, attempt)
	leftover = r.unfinished(leftover)
	if len(leftover) == 0 || r.ctx.Err() != nil {
		return
	}
	if attempt >= r.g.cfg.MaxReshards {
		r.g.cfg.Logf("noisegw: %d nets exhausted their %d reshard hops", len(leftover), r.g.cfg.MaxReshards)
		return // the handler reports them after wg.Wait
	}
	targets := r.g.set.healthyNames()
	if avoid {
		targets = r.g.set.healthyExcept(replica)
	}
	if len(targets) == 0 {
		r.g.cfg.Logf("noisegw: %d nets unassigned: no healthy replicas to reshard onto", len(leftover))
		return
	}
	r.g.reg.Counter(mGwReshards).Inc()
	r.reshards.Add(1)
	r.g.cfg.Logf("noisegw: resharding %d nets from %s over %d replicas (hop %d)",
		len(leftover), replica, len(targets), attempt+1)
	for name, shard := range shardCases(leftover, targets) {
		r.spawn(name, shard, attempt+1)
	}
}

// streamShard runs the shard's sub-request against one replica,
// absorbing shed (503) responses with capped jittered backoff. avoid
// reports that the reshard should go elsewhere: true after a replica
// failure (struck) or an exhausted shed budget (saturated).
func (r *run) streamShard(replica string, cases []workload.CaseJSON, attempt int) (leftover []workload.CaseJSON, avoid bool) {
	body, err := shardBody(r.tech, cases)
	if err != nil {
		r.g.cfg.Logf("noisegw: shard body: %v", err)
		return cases, true
	}
	sheds := 0
	for {
		outcome, retryAfter := r.streamOnce(replica, cases, body, attempt)
		switch outcome {
		case streamDone:
			r.g.set.clearStrikes(replica)
			// Normally nothing is left; canceled nets (replica deadline,
			// drain) remain for the caller to reshard.
			return cases, false
		case streamShed:
			sheds++
			if sheds > r.g.cfg.ShedRetries {
				return cases, true
			}
			if !r.sleepShed(sheds, retryAfter) {
				return nil, false // run context died while backing off
			}
		case streamFailed:
			r.g.set.strike(replica)
			return cases, true
		default: // streamCtxDone
			return nil, false
		}
	}
}

// sleepShed backs off between shed retries: exponential from
// ShedBackoff, floored by the replica's capped Retry-After hint,
// jittered ±50%. Reports false when the run context died first.
func (r *run) sleepShed(sheds int, retryAfter time.Duration) bool {
	d := r.g.cfg.ShedBackoff << (sheds - 1)
	if d > r.g.cfg.MaxShedBackoff || d <= 0 {
		d = r.g.cfg.MaxShedBackoff
	}
	if retryAfter > r.g.cfg.MaxShedBackoff {
		retryAfter = r.g.cfg.MaxShedBackoff
	}
	if retryAfter > d {
		d = retryAfter
	}
	d = time.Duration(float64(d) * (0.5 + shedJitter()))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-r.ctx.Done():
		return false
	}
}

// streamOutcome classifies one sub-request.
type streamOutcome int

const (
	streamDone    streamOutcome = iota // summary arrived; the stream is complete
	streamShed                         // 503/429: the replica asked us to back off
	streamFailed                       // connect error, torn tail, or stall: strike and reshard
	streamCtxDone                      // the run's own context died
)

// streamEvent is one parsed element of a shard stream.
type streamEvent struct {
	rec     clarinet.JournalRecord
	summary *noised.Summary
	err     error
}

// streamOnce opens one sub-request and consumes its stream, finalizing
// records as they arrive. The watchdog turns silence into failure: any
// event (records and heartbeats alike) resets the stall timer, so a
// stream that goes quiet past StallTimeout — a SIGKILLed replica whose
// socket lingers, a stalled response — is canceled and counted, and a
// stream with no progress past HedgeAfter is duplicated onto another
// replica (once) while this one keeps running.
func (r *run) streamOnce(replica string, cases []workload.CaseJSON, body []byte, attempt int) (streamOutcome, time.Duration) {
	subctx, subcancel := context.WithCancel(r.ctx)
	defer subcancel()
	shardStart := time.Now()

	u := replica + "/v1/analyze"
	if q := r.subQuery(cases); q != "" {
		u += "?" + q
	}
	req, err := http.NewRequestWithContext(subctx, http.MethodPost, u, bytes.NewReader(body))
	if err != nil {
		return streamFailed, 0
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := r.g.client.Do(req)
	if err != nil {
		if r.ctx.Err() != nil {
			return streamCtxDone, 0
		}
		return streamFailed, 0
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusServiceUnavailable, http.StatusTooManyRequests:
		io.Copy(io.Discard, io.LimitReader(resp.Body, 512))
		r.g.reg.Counter(mGwShardShed).Inc()
		return streamShed, parseRetryAfter(resp.Header.Get("Retry-After"))
	default:
		// The replica rejected a request the gateway already validated —
		// a version skew or a bug, not load. Treat it as a failure so
		// the work moves elsewhere.
		r.g.cfg.Logf("noisegw: replica %s answered %s", replica, resp.Status)
		return streamFailed, 0
	}
	r.g.reg.Counter(mGwShardStreams).Inc()

	events := make(chan streamEvent)
	// The reader is bounded by subctx (canceled on every return path
	// above/below): each send selects on it, and body reads unblock
	// when the request context dies.
	go readShardStream(subctx, resp.Body, events)

	stall := time.NewTimer(r.g.cfg.StallTimeout)
	defer stall.Stop()
	var hedgeC <-chan time.Time
	if r.g.cfg.HedgeAfter > 0 {
		hedge := time.NewTimer(r.g.cfg.HedgeAfter)
		defer hedge.Stop()
		hedgeC = hedge.C
	}
	for {
		select {
		case ev, ok := <-events:
			if !ok || ev.err != nil {
				// EOF without a summary, a scan error, a torn frame: the
				// replica died mid-stream.
				r.g.reg.Counter(mGwShardTorn).Inc()
				return streamFailed, 0
			}
			if !stall.Stop() {
				select {
				case <-stall.C:
				default:
				}
			}
			stall.Reset(r.g.cfg.StallTimeout)
			switch {
			case ev.summary != nil:
				r.g.reg.Histogram(mGwShardLatency).Observe(time.Since(shardStart))
				return streamDone, 0
			case ev.rec.Net != "":
				r.finalize(ev.rec)
			}
		case <-stall.C:
			r.g.reg.Counter(mGwShardStalled).Inc()
			r.g.cfg.Logf("noisegw: replica %s stream stalled past %v", replica, r.g.cfg.StallTimeout)
			return streamFailed, 0
		case <-hedgeC:
			r.g.reg.Counter(mGwHedges).Inc()
			r.hedges.Add(1)
			r.hedgeShard(replica, cases, attempt)
		case <-r.ctx.Done():
			return streamCtxDone, 0
		}
	}
}

// hedgeShard duplicates a slow shard's unfinished nets onto another
// healthy replica; the done map makes whichever stream answers first
// win and the loser's replays drop.
func (r *run) hedgeShard(replica string, cases []workload.CaseJSON, attempt int) {
	rest := r.unfinished(cases)
	if len(rest) == 0 {
		return
	}
	targets := r.g.set.healthyExcept(replica)
	if len(targets) == 0 {
		return
	}
	r.g.cfg.Logf("noisegw: hedging %d slow nets from %s", len(rest), replica)
	for name, shard := range shardCases(rest, targets) {
		r.spawn(name, shard, attempt+1)
	}
}

// readShardStream parses the replica's NDJSON stream into events. It is
// bounded by ctx: every send has a cancellation arm, and the channel
// close signals end of stream.
func readShardStream(ctx context.Context, body io.Reader, events chan<- streamEvent) {
	defer close(events)
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var sl noised.StreamLine
		if err := json.Unmarshal(line, &sl); err != nil {
			select {
			case events <- streamEvent{err: fmt.Errorf("noisegw: malformed stream line: %w", err)}:
			case <-ctx.Done():
			}
			return
		}
		ev := streamEvent{rec: sl.JournalRecord, summary: sl.Summary}
		select {
		case events <- ev:
		case <-ctx.Done():
			return
		}
		if sl.Summary != nil {
			return
		}
	}
	if err := sc.Err(); err != nil {
		select {
		case events <- streamEvent{err: err}:
		case <-ctx.Done():
		}
	}
}

// finalize merges one record: the first real outcome per net wins and
// goes to the sink; duplicates and canceled placeholders drop (the
// latter stay eligible for the reshard that completes them).
func (r *run) finalize(rec clarinet.JournalRecord) {
	if rec.Class == "canceled" {
		return
	}
	r.mu.Lock()
	if r.done[rec.Net] {
		r.mu.Unlock()
		r.g.reg.Counter(mGwNetsDuplicate).Inc()
		return
	}
	r.done[rec.Net] = true
	r.mu.Unlock()
	r.g.reg.Counter(mGwNetsMerged).Inc()
	r.g.reg.Histogram(mGwNetLatency).Observe(time.Since(r.start))
	select {
	case r.sink <- rec:
	case <-r.ctx.Done():
	}
}

// unfinished filters cases down to the nets no stream has finalized.
func (r *run) unfinished(cases []workload.CaseJSON) []workload.CaseJSON {
	if len(cases) == 0 {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []workload.CaseJSON
	for _, c := range cases {
		if !r.done[c.Name] {
			out = append(out, c)
		}
	}
	return out
}

// finished reports whether a net has been finalized.
func (r *run) finished(net string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.done[net]
}

// subQuery renders one shard's query string: the forwarded analysis
// options plus the derived sub-request ID.
func (r *run) subQuery(cases []workload.CaseJSON) string {
	q := url.Values{}
	for k, vs := range r.query {
		q[k] = vs
	}
	if id := r.subRequestID(cases); id != "" {
		q.Set("request_id", id)
	}
	return q.Encode()
}

// subRequestID derives a stable per-shard journal identity from the
// client's request_id and the shard's net names: a shed retry of the
// same shard presents the same ID, so the replica's journal replays
// the nets it already finished instead of re-analyzing them. A
// different shard (after a reshard) gets a different ID, so journals
// never mix shards. Without a client ID there is no journaling.
func (r *run) subRequestID(cases []workload.CaseJSON) string {
	if r.requestID == "" {
		return ""
	}
	h := fnv.New64a()
	for _, c := range cases {
		h.Write([]byte(c.Name))
		h.Write([]byte{0})
	}
	return fmt.Sprintf("%s-s%08x", r.requestID, h.Sum64()&0xffffffff)
}

// shardBody serializes one shard as the workload JSON schema the
// replicas parse.
func shardBody(tech string, cases []workload.CaseJSON) ([]byte, error) {
	return json.Marshal(workload.FileJSON{Technology: tech, Cases: cases})
}

// parseRetryAfter reads a delay-seconds Retry-After value; anything
// else maps to zero.
func parseRetryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}
