package noisegw

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"

	"repro/internal/workload"
)

// Sharding. Nets are distributed over replicas by consistent hash of
// their characterization bucket, not their name: the bucket key is the
// victim driver cell crossed with a quantized input-slew band — the
// exact key the engine's alignment-table and driver-characterization
// caches are indexed by. Every net of one bucket lands on the same
// replica, so each replica's warm state covers only its slice of the
// workload and stays hot for it; a name-hash would spray every bucket
// across every replica and make each one warm the whole library.
//
// The ring is a standard consistent hash with virtual nodes: each
// replica owns ringVnodes pseudo-random points on a 64-bit circle, a
// bucket maps to the first point at or after its own hash. Removing a
// replica moves only the buckets it owned (to their next neighbors);
// the rest of the assignment — and the caches behind it — stays put.

// slewBandsPerDecade quantizes input slew into logarithmic bands, ~5
// per decade (matching the driver characterization cache's bucketing
// resolution closely enough that one band's nets hit one table).
const slewBandsPerDecade = 5

// ringVnodes is the virtual-node count per replica. 64 points keeps
// the max/mean bucket-load ratio under ~1.3 for small clusters.
const ringVnodes = 64

// bucketKey is the characterization bucket of one case: the cache
// locality unit the shard function preserves.
func bucketKey(c workload.CaseJSON) string {
	slew := c.Victim.InputSlew
	band := math.MinInt32
	if slew > 0 {
		band = int(math.Floor(math.Log10(slew) * slewBandsPerDecade))
	}
	return fmt.Sprintf("%s/%d", c.Victim.Cell, band)
}

// ring is a consistent-hash ring over replica names.
type ring struct {
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash uint64
	name string
}

// newRing builds the ring over the given replica names. Order does not
// matter; the same name set always yields the same ring.
func newRing(names []string) *ring {
	r := &ring{points: make([]ringPoint, 0, len(names)*ringVnodes)}
	for _, n := range names {
		for v := 0; v < ringVnodes; v++ {
			r.points = append(r.points, ringPoint{hash: ringHash(fmt.Sprintf("%s#%d", n, v)), name: n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].name < r.points[j].name
	})
	return r
}

// owner returns the replica owning a bucket, or "" on an empty ring.
func (r *ring) owner(bucket string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := ringHash(bucket)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].name
}

// ringHash is FNV-1a with an avalanche finalizer: FNV alone clusters
// on short sequential suffixes like "#1", "#2", which would skew the
// ring.
func ringHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// shardCases distributes cases over the named replicas by consistent
// hash of their characterization bucket, preserving input order within
// each shard. An empty name set maps everything to "".
func shardCases(cases []workload.CaseJSON, names []string) map[string][]workload.CaseJSON {
	r := newRing(names)
	out := make(map[string][]workload.CaseJSON, len(names))
	for _, c := range cases {
		owner := r.owner(bucketKey(c))
		out[owner] = append(out[owner], c)
	}
	return out
}
