package noisegw

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/clarinet"
	"repro/internal/colblob"
	"repro/internal/noised"
	"repro/internal/workload"
)

// fakeReplica is a scripted noised stand-in: it parses the shard body
// like a replica would, records what it was asked, and answers per the
// behave hook — which is what lets the tests stage sheds, mid-stream
// deaths, stalls, and duplicate records deterministically.
type fakeReplica struct {
	t  *testing.T
	ts *httptest.Server

	mu       sync.Mutex
	calls    int
	askedIDs []string   // request_id per call
	asked    [][]string // net names per call

	// behave handles call n (1-based). nil or returning false falls
	// through to serveAll.
	behave func(n int, w http.ResponseWriter, r *http.Request, file workload.FileJSON) bool
}

func newFakeReplica(t *testing.T) *fakeReplica {
	f := &fakeReplica{t: t}
	f.ts = httptest.NewServer(http.HandlerFunc(f.handle))
	t.Cleanup(f.ts.Close)
	return f
}

func (f *fakeReplica) handle(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/readyz" {
		fmt.Fprintln(w, "ok")
		return
	}
	var file workload.FileJSON
	if err := json.NewDecoder(r.Body).Decode(&file); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	names := make([]string, len(file.Cases))
	for i, c := range file.Cases {
		names[i] = c.Name
	}
	f.mu.Lock()
	f.calls++
	n := f.calls
	f.asked = append(f.asked, names)
	f.askedIDs = append(f.askedIDs, r.URL.Query().Get("request_id"))
	behave := f.behave
	f.mu.Unlock()
	if behave != nil && behave(n, w, r, file) {
		return
	}
	serveAll(w, file, nil)
}

func (f *fakeReplica) callCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls
}

// netsAsked returns the union of every net this replica was ever asked
// to analyze.
func (f *fakeReplica) netsAsked() map[string]bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := map[string]bool{}
	for _, names := range f.asked {
		for _, n := range names {
			out[n] = true
		}
	}
	return out
}

func successRecord(net string) clarinet.JournalRecord {
	return clarinet.JournalRecord{
		Net:     net,
		Quality: "clean",
		Result:  &clarinet.JournalResult{DelayNoise: 1e-12, Iterations: 1},
	}
}

func writeLine(w http.ResponseWriter, v any) {
	json.NewEncoder(w).Encode(v)
	if fl, ok := w.(http.Flusher); ok {
		fl.Flush()
	}
}

// serveAll streams a clean record per case and the terminal summary;
// skip suppresses nets (they count as canceled, like a replica drain).
func serveAll(w http.ResponseWriter, file workload.FileJSON, skip map[string]bool) {
	w.Header().Set("Content-Type", clarinet.ContentTypeNDJSON)
	sum := noised.Summary{Nets: len(file.Cases)}
	for _, c := range file.Cases {
		if skip[c.Name] {
			writeLine(w, noised.StreamLine{JournalRecord: clarinet.JournalRecord{
				Net: c.Name, Class: "canceled", Error: "analysis canceled: replica draining",
			}})
			sum.Canceled++
			continue
		}
		writeLine(w, noised.StreamLine{JournalRecord: successRecord(c.Name)})
		sum.OK++
	}
	writeLine(w, noised.StreamLine{Summary: &sum})
}

// newTestGateway builds a gateway over the fakes with fast test timings.
func newTestGateway(t *testing.T, mutate func(*Config), replicas ...*fakeReplica) (*Gateway, *httptest.Server) {
	t.Helper()
	cfg := Config{
		RetryAfter:   time.Second,
		StallTimeout: 5 * time.Second,
		ShedBackoff:  time.Millisecond,
		EjectBackoff: 10 * time.Millisecond,
	}
	for _, f := range replicas {
		cfg.Replicas = append(cfg.Replicas, f.ts.URL)
	}
	if mutate != nil {
		mutate(&cfg)
	}
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(g.Handler())
	t.Cleanup(ts.Close)
	return g, ts
}

// testCases builds n structurally valid cases spread over enough cells
// and slew bands that every replica of a small fleet owns some buckets.
func testCases(n int) []workload.CaseJSON {
	cases := make([]workload.CaseJSON, n)
	for i := range cases {
		slew := 20e-12
		if i%2 == 1 {
			slew = 400e-12
		}
		cases[i] = caseFor(fmt.Sprintf("net%03d", i), fmt.Sprintf("CELL%d", i%11), slew)
	}
	return cases
}

func casesBody(t *testing.T, cases []workload.CaseJSON) []byte {
	t.Helper()
	b, err := json.Marshal(workload.FileJSON{Technology: "default-180nm", Cases: cases})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// postAnalyze runs one gateway request and decodes the NDJSON stream.
func postAnalyze(t *testing.T, url string, body []byte) ([]clarinet.JournalRecord, *noised.Summary) {
	t.Helper()
	resp, err := http.Post(url+"/v1/analyze", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("status = %s: %s", resp.Status, b)
	}
	return readGatewayStream(t, resp.Body)
}

func readGatewayStream(t *testing.T, body io.Reader) ([]clarinet.JournalRecord, *noised.Summary) {
	t.Helper()
	var recs []clarinet.JournalRecord
	var sum *noised.Summary
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var sl noised.StreamLine
		if err := json.Unmarshal(sc.Bytes(), &sl); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		switch {
		case sl.Summary != nil:
			sum = sl.Summary
		case sl.Net != "":
			recs = append(recs, sl.JournalRecord)
		case sl.Heartbeat:
		default:
			t.Fatalf("unclassifiable stream line %q", sc.Text())
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return recs, sum
}

// requireExactlyOnce asserts the merged stream finalized every expected
// net exactly once.
func requireExactlyOnce(t *testing.T, recs []clarinet.JournalRecord, cases []workload.CaseJSON) {
	t.Helper()
	seen := map[string]int{}
	for _, r := range recs {
		seen[r.Net]++
	}
	for _, c := range cases {
		if seen[c.Name] != 1 {
			t.Fatalf("net %s finalized %d times", c.Name, seen[c.Name])
		}
	}
	if len(recs) != len(cases) {
		t.Fatalf("merged %d records for %d nets", len(recs), len(cases))
	}
}

// TestGatewayMergeAllShards is the happy path: three replicas, disjoint
// shards, every net exactly once, and derived per-shard journal IDs on
// the sub-requests.
func TestGatewayMergeAllShards(t *testing.T) {
	a, b, c := newFakeReplica(t), newFakeReplica(t), newFakeReplica(t)
	_, ts := newTestGateway(t, nil, a, b, c)
	cases := testCases(40)

	resp, err := http.Post(ts.URL+"/v1/analyze?request_id=merge-test", "application/json",
		bytes.NewReader(casesBody(t, cases)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %s", resp.Status)
	}
	recs, sum := readGatewayStream(t, resp.Body)
	requireExactlyOnce(t, recs, cases)
	if sum == nil || sum.Nets != 40 || sum.OK != 40 || sum.Failed != 0 || sum.Canceled != 0 {
		t.Fatalf("summary = %+v", sum)
	}
	if sum.RequestID != "merge-test" {
		t.Fatalf("summary request_id = %q", sum.RequestID)
	}

	// The shards must partition the nets: disjoint, and together complete.
	union := map[string]int{}
	served := 0
	subID := regexp.MustCompile(`^merge-test-s[0-9a-f]{8}$`)
	for _, f := range []*fakeReplica{a, b, c} {
		if f.callCount() == 0 {
			continue
		}
		served++
		for n := range f.netsAsked() {
			union[n]++
		}
		f.mu.Lock()
		for _, id := range f.askedIDs {
			if !subID.MatchString(id) {
				t.Errorf("sub-request id %q does not derive from the client id", id)
			}
		}
		f.mu.Unlock()
	}
	if served < 2 {
		t.Fatalf("only %d replicas served shards; sharding collapsed", served)
	}
	for _, c := range cases {
		if union[c.Name] != 1 {
			t.Fatalf("net %s assigned to %d replicas", c.Name, union[c.Name])
		}
	}
}

// TestGatewayReplicaDeathReshard is the headline failure path: a
// replica dies mid-stream after a few records; the gateway detects the
// torn stream, strikes the replica, reshards the unfinished nets onto
// the survivors, and still delivers every net exactly once.
func TestGatewayReplicaDeathReshard(t *testing.T) {
	a, b, c := newFakeReplica(t), newFakeReplica(t), newFakeReplica(t)
	a.behave = func(n int, w http.ResponseWriter, r *http.Request, file workload.FileJSON) bool {
		if n > 1 {
			return false // healed after the first death
		}
		w.Header().Set("Content-Type", clarinet.ContentTypeNDJSON)
		for _, c := range file.Cases[:min(2, len(file.Cases))] {
			writeLine(w, noised.StreamLine{JournalRecord: successRecord(c.Name)})
		}
		panic(http.ErrAbortHandler) // the process is gone mid-stream
	}
	g, ts := newTestGateway(t, nil, a, b, c)
	cases := testCases(40)

	recs, sum := postAnalyze(t, ts.URL, casesBody(t, cases))
	requireExactlyOnce(t, recs, cases)
	if sum == nil || sum.OK != 40 || sum.Failed != 0 {
		t.Fatalf("summary = %+v", sum)
	}
	snap := g.Metrics().Snapshot()
	if snap.Counters[mGwReshards] < 1 {
		t.Fatalf("reshards = %d, want >= 1", snap.Counters[mGwReshards])
	}
	if snap.Counters[mGwShardTorn] < 1 {
		t.Fatalf("torn streams = %d, want >= 1", snap.Counters[mGwShardTorn])
	}
	if a.callCount() != 1 {
		t.Fatalf("dead replica was retried %d times; reshard must avoid it", a.callCount())
	}
}

// TestGatewayShedBackoff: a 503 from a replica is backpressure, not
// failure — the gateway retries the same replica after the hinted
// backoff and the replica keeps its health.
func TestGatewayShedBackoff(t *testing.T) {
	restore := shedJitter
	shedJitter = func() float64 { return 0.5 } // jitter factor 1.0
	defer func() { shedJitter = restore }()

	a := newFakeReplica(t)
	a.behave = func(n int, w http.ResponseWriter, r *http.Request, file workload.FileJSON) bool {
		if n <= 2 {
			w.Header().Set("Retry-After", "0")
			http.Error(w, "saturated", http.StatusServiceUnavailable)
			return true
		}
		return false
	}
	g, ts := newTestGateway(t, nil, a)
	cases := testCases(12)

	recs, sum := postAnalyze(t, ts.URL, casesBody(t, cases))
	requireExactlyOnce(t, recs, cases)
	if sum.OK != 12 {
		t.Fatalf("summary = %+v", sum)
	}
	snap := g.Metrics().Snapshot()
	if snap.Counters[mGwShardShed] != 2 {
		t.Fatalf("sheds = %d, want 2", snap.Counters[mGwShardShed])
	}
	if snap.Counters[mGwReplicaEjections] != 0 {
		t.Fatalf("shed must not eject; ejections = %d", snap.Counters[mGwReplicaEjections])
	}
	if a.callCount() != 3 {
		t.Fatalf("calls = %d, want 3 (two sheds, one serve)", a.callCount())
	}
}

// TestGatewayShedExhaustedMovesOn: a replica that sheds past the retry
// budget is saturated — the shard reshards elsewhere without striking
// it.
func TestGatewayShedExhaustedMovesOn(t *testing.T) {
	restore := shedJitter
	shedJitter = func() float64 { return 0 } // half the base, fastest
	defer func() { shedJitter = restore }()

	a, b := newFakeReplica(t), newFakeReplica(t)
	a.behave = func(n int, w http.ResponseWriter, r *http.Request, file workload.FileJSON) bool {
		w.Header().Set("Retry-After", "0")
		http.Error(w, "saturated", http.StatusServiceUnavailable)
		return true
	}
	g, ts := newTestGateway(t, func(cfg *Config) { cfg.ShedRetries = 1 }, a, b)
	cases := testCases(24)

	recs, sum := postAnalyze(t, ts.URL, casesBody(t, cases))
	requireExactlyOnce(t, recs, cases)
	if sum.OK != 24 {
		t.Fatalf("summary = %+v", sum)
	}
	snap := g.Metrics().Snapshot()
	if a.callCount() > 0 && snap.Counters[mGwReshards] < 1 {
		t.Fatalf("reshards = %d, want >= 1 after shed exhaustion", snap.Counters[mGwReshards])
	}
	if snap.Counters[mGwReplicaEjections] != 0 {
		t.Fatalf("saturation must not eject; ejections = %d", snap.Counters[mGwReplicaEjections])
	}
}

// TestGatewayExactlyOnceDuplicates: journal replays (a replica
// re-sending records it already finished) drop at the merge.
func TestGatewayExactlyOnceDuplicates(t *testing.T) {
	a := newFakeReplica(t)
	a.behave = func(n int, w http.ResponseWriter, r *http.Request, file workload.FileJSON) bool {
		w.Header().Set("Content-Type", clarinet.ContentTypeNDJSON)
		sum := noised.Summary{Nets: len(file.Cases)}
		for _, c := range file.Cases {
			writeLine(w, noised.StreamLine{JournalRecord: successRecord(c.Name)})
			writeLine(w, noised.StreamLine{JournalRecord: successRecord(c.Name)}) // replay
			sum.OK++
		}
		writeLine(w, noised.StreamLine{Summary: &sum})
		return true
	}
	g, ts := newTestGateway(t, nil, a)
	cases := testCases(10)

	recs, sum := postAnalyze(t, ts.URL, casesBody(t, cases))
	requireExactlyOnce(t, recs, cases)
	if sum.OK != 10 {
		t.Fatalf("summary = %+v", sum)
	}
	if dup := g.Metrics().Snapshot().Counters[mGwNetsDuplicate]; dup != 10 {
		t.Fatalf("duplicates dropped = %d, want 10", dup)
	}
}

// TestGatewayCanceledNeverFinalizes: canceled placeholders from a
// draining replica leave their nets eligible, and the reshard completes
// them — the client never sees a canceled record for a net another
// replica could finish.
func TestGatewayCanceledNeverFinalizes(t *testing.T) {
	a := newFakeReplica(t)
	a.behave = func(n int, w http.ResponseWriter, r *http.Request, file workload.FileJSON) bool {
		if n > 1 {
			return false
		}
		skip := map[string]bool{}
		for _, c := range file.Cases[min(2, len(file.Cases)):] {
			skip[c.Name] = true // drained mid-batch: canceled placeholders
		}
		serveAll(w, file, skip)
		return true
	}
	g, ts := newTestGateway(t, nil, a)
	cases := testCases(12)

	recs, sum := postAnalyze(t, ts.URL, casesBody(t, cases))
	requireExactlyOnce(t, recs, cases)
	for _, r := range recs {
		if r.Class == "canceled" {
			t.Fatalf("canceled record leaked to the client: %+v", r)
		}
	}
	if sum.OK != 12 || sum.Canceled != 0 {
		t.Fatalf("summary = %+v", sum)
	}
	if n := g.Metrics().Snapshot().Counters[mGwReshards]; n < 1 {
		t.Fatalf("reshards = %d, want >= 1", n)
	}
}

// TestGatewayStallDetection: a stream that goes silent past
// StallTimeout is cut, the replica struck, and the work resharded.
func TestGatewayStallDetection(t *testing.T) {
	a, b := newFakeReplica(t), newFakeReplica(t)
	a.behave = func(n int, w http.ResponseWriter, r *http.Request, file workload.FileJSON) bool {
		if n > 1 {
			return false
		}
		w.Header().Set("Content-Type", clarinet.ContentTypeNDJSON)
		writeLine(w, noised.StreamLine{JournalRecord: successRecord(file.Cases[0].Name)})
		select { // silence, not progress — until the gateway hangs up
		case <-r.Context().Done():
		case <-time.After(10 * time.Second):
		}
		return true
	}
	g, ts := newTestGateway(t, func(cfg *Config) { cfg.StallTimeout = 80 * time.Millisecond }, a, b)
	cases := testCases(20)

	recs, sum := postAnalyze(t, ts.URL, casesBody(t, cases))
	requireExactlyOnce(t, recs, cases)
	if sum.OK != 20 {
		t.Fatalf("summary = %+v", sum)
	}
	snap := g.Metrics().Snapshot()
	if a.callCount() > 0 && snap.Counters[mGwShardStalled] < 1 {
		t.Fatalf("stalls = %d, want >= 1", snap.Counters[mGwShardStalled])
	}
}

// TestGatewayHedge: a slow shard past HedgeAfter is duplicated onto
// another replica; whichever answers first wins and the loser's replays
// drop.
func TestGatewayHedge(t *testing.T) {
	a, b := newFakeReplica(t), newFakeReplica(t)
	slowOnFirst := func(n int, w http.ResponseWriter, r *http.Request, file workload.FileJSON) bool {
		if n > 1 {
			return false // the hedge target serves instantly
		}
		// Open the stream, then crawl: alive (heartbeats) but far slower
		// than the hedge trigger.
		w.Header().Set("Content-Type", clarinet.ContentTypeNDJSON)
		writeLine(w, noised.StreamLine{Heartbeat: true})
		select {
		case <-r.Context().Done():
			return true
		case <-time.After(150 * time.Millisecond):
		}
		serveAll(w, file, nil)
		return true
	}
	a.behave = slowOnFirst
	b.behave = slowOnFirst
	g, ts := newTestGateway(t, func(cfg *Config) { cfg.HedgeAfter = 30 * time.Millisecond }, a, b)
	cases := testCases(24)

	recs, sum := postAnalyze(t, ts.URL, casesBody(t, cases))
	requireExactlyOnce(t, recs, cases)
	if sum.OK != 24 {
		t.Fatalf("summary = %+v", sum)
	}
	if n := g.Metrics().Snapshot().Counters[mGwHedges]; n < 1 {
		t.Fatalf("hedges = %d, want >= 1", n)
	}
}

// TestGatewayColblob: an Accept for the binary wire gets colblob frames
// carrying the same merged records.
func TestGatewayColblob(t *testing.T) {
	a, b := newFakeReplica(t), newFakeReplica(t)
	_, ts := newTestGateway(t, nil, a, b)
	cases := testCases(16)

	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/analyze", bytes.NewReader(casesBody(t, cases)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", clarinet.ContentTypeColblob)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != clarinet.ContentTypeColblob {
		t.Fatalf("content type = %q", ct)
	}
	fr := colblob.NewFrameReader(resp.Body)
	var dec clarinet.BinaryRecordDecoder
	var recs []clarinet.JournalRecord
	var sum *noised.Summary
	for {
		kind, payload, err := fr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		switch kind {
		case colblob.FrameRecord:
			rec, err := dec.Decode(payload)
			if err != nil {
				t.Fatal(err)
			}
			recs = append(recs, rec)
		case colblob.FrameSummary:
			sum = &noised.Summary{}
			if err := json.Unmarshal(payload, sum); err != nil {
				t.Fatal(err)
			}
		case colblob.FrameHeartbeat:
		}
	}
	requireExactlyOnce(t, recs, cases)
	if sum == nil || sum.OK != 16 {
		t.Fatalf("summary = %+v", sum)
	}
}

// TestGatewayTimeoutReportsCanceled: when the request deadline cuts the
// run short, the unfinished nets come back as canceled records and the
// summary carries the deadline retry hint.
func TestGatewayTimeoutReportsCanceled(t *testing.T) {
	a := newFakeReplica(t)
	a.behave = func(n int, w http.ResponseWriter, r *http.Request, file workload.FileJSON) bool {
		w.Header().Set("Content-Type", clarinet.ContentTypeNDJSON)
		writeLine(w, noised.StreamLine{JournalRecord: successRecord(file.Cases[0].Name)})
		select {
		case <-r.Context().Done():
		case <-time.After(10 * time.Second):
		}
		return true
	}
	_, ts := newTestGateway(t, nil, a)
	cases := testCases(6)

	resp, err := http.Post(ts.URL+"/v1/analyze?timeout=150ms", "application/json",
		bytes.NewReader(casesBody(t, cases)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	recs, sum := readGatewayStream(t, resp.Body)
	if len(recs) != 6 {
		t.Fatalf("got %d records, want 6 (1 ok + 5 canceled)", len(recs))
	}
	canceled := 0
	for _, r := range recs {
		if r.Class == "canceled" {
			canceled++
		}
	}
	if canceled != 5 {
		t.Fatalf("canceled records = %d, want 5", canceled)
	}
	if sum == nil || sum.OK != 1 || sum.Canceled != 5 || !sum.Deadline {
		t.Fatalf("summary = %+v", sum)
	}
}

// TestGatewayNoHealthyReplicas: an empty fleet sheds with 503 and a
// Retry-After hint rather than queueing doomed work.
func TestGatewayNoHealthyReplicas(t *testing.T) {
	a := newFakeReplica(t)
	g, ts := newTestGateway(t, nil, a)
	for i := 0; i < DefaultMaxStrikes; i++ {
		g.set.strike(a.ts.URL)
	}
	resp, err := http.Post(ts.URL+"/v1/analyze", "application/json",
		bytes.NewReader(casesBody(t, testCases(4))))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %s, want 503", resp.Status)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("no Retry-After hint on the shed")
	}
	if n := g.Metrics().Snapshot().Counters[mGwRejectedNoReplicas]; n != 1 {
		t.Fatalf("rejected.no_replicas = %d, want 1", n)
	}

	// readyz must agree that the gateway cannot serve.
	rz, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	rz.Body.Close()
	if rz.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz = %s, want 503", rz.Status)
	}
}

// TestGatewayValidation: requests every replica would reject fail fast
// at the gateway with 400/413.
func TestGatewayValidation(t *testing.T) {
	a := newFakeReplica(t)
	_, ts := newTestGateway(t, func(cfg *Config) { cfg.MaxNets = 8 }, a)
	good := casesBody(t, testCases(4))

	post := func(path string, body []byte) *http.Response {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}
	if resp := post("/v1/analyze?hold=nope", good); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad hold: status = %s", resp.Status)
	}
	if resp := post("/v1/analyze?timeout=-3s", good); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad timeout: status = %s", resp.Status)
	}
	if resp := post("/v1/analyze?request_id=no/slashes", good); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad request_id: status = %s", resp.Status)
	}
	if resp := post("/v1/analyze", casesBody(t, nil)); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty cases: status = %s", resp.Status)
	}
	dup := testCases(2)
	dup[1].Name = dup[0].Name
	if resp := post("/v1/analyze", casesBody(t, dup)); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("duplicate nets: status = %s", resp.Status)
	}
	if resp := post("/v1/analyze", casesBody(t, testCases(9))); resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("over MaxNets: status = %s", resp.Status)
	}
	if a.callCount() != 0 {
		t.Fatalf("invalid requests reached a replica %d times", a.callCount())
	}
}

// TestGatewayHealthz: the health payload carries per-replica rows and a
// status that degrades with the fleet.
func TestGatewayHealthz(t *testing.T) {
	a, b := newFakeReplica(t), newFakeReplica(t)
	g, ts := newTestGateway(t, nil, a, b)

	get := func() Health {
		t.Helper()
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var h Health
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
		return h
	}
	h := get()
	if h.Status != "ok" || h.ReplicasHealthy != 2 || len(h.Replicas) != 2 {
		t.Fatalf("health = %+v", h)
	}
	if h.Instance == "" || h.Instance != g.Instance() {
		t.Fatalf("instance = %q, want %q", h.Instance, g.Instance())
	}
	for i := 0; i < DefaultMaxStrikes; i++ {
		g.set.strike(a.ts.URL)
	}
	if h := get(); h.Status != "degraded" || h.ReplicasHealthy != 1 {
		t.Fatalf("after ejection health = %+v", h)
	}
	g.Drain()
	if h := get(); h.Status != "draining" || !h.Draining {
		t.Fatalf("draining health = %+v", h)
	}
}

// TestProbeEjectRejoinRestart drives the replica state machine through
// its full cycle: probe failures eject, a recovered replica rejoins
// after its window, and a changed instance identity counts a restart.
func TestProbeEjectRejoinRestart(t *testing.T) {
	var healthy, instance sync.Map
	healthy.Store("up", true)
	instance.Store("id", "first-boot")
	replica := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id, _ := instance.Load("id")
		w.Header().Set(noised.InstanceHeader, id.(string))
		if up, _ := healthy.Load("up"); !up.(bool) {
			http.Error(w, "down", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	}))
	t.Cleanup(replica.Close)

	g, err := New(Config{
		Replicas:     []string{replica.URL},
		MaxStrikes:   2,
		EjectBackoff: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := t.Context()

	g.ProbeReplicas(ctx) // healthy: learns the instance
	if rows := g.set.health(); !rows[0].Healthy || rows[0].Instance != "first-boot" {
		t.Fatalf("initial health = %+v", rows[0])
	}

	healthy.Store("up", false)
	g.ProbeReplicas(ctx)
	g.ProbeReplicas(ctx)
	if rows := g.set.health(); rows[0].Healthy {
		t.Fatalf("still healthy after %d failed probes", 2)
	}
	if n := g.Metrics().Snapshot().Counters[mGwReplicaEjections]; n != 1 {
		t.Fatalf("ejections = %d, want 1", n)
	}

	// Inside the window the replica is left alone; past it, a clean
	// probe rejoins with a fresh instance — counted as a restart.
	healthy.Store("up", true)
	instance.Store("id", "second-boot")
	time.Sleep(10 * time.Millisecond)
	g.ProbeReplicas(ctx)
	rows := g.set.health()
	if !rows[0].Healthy || rows[0].Instance != "second-boot" {
		t.Fatalf("after rejoin health = %+v", rows[0])
	}
	snap := g.Metrics().Snapshot()
	if snap.Counters[mGwReplicaRejoins] != 1 || snap.Counters[mGwReplicaRestarts] != 1 {
		t.Fatalf("rejoins = %d restarts = %d, want 1 and 1",
			snap.Counters[mGwReplicaRejoins], snap.Counters[mGwReplicaRestarts])
	}
}

// TestGatewayDraining: a draining gateway refuses new work on both the
// analyze and readiness surfaces.
func TestGatewayDraining(t *testing.T) {
	a := newFakeReplica(t)
	g, ts := newTestGateway(t, nil, a)
	g.Drain()
	resp, err := http.Post(ts.URL+"/v1/analyze", "application/json",
		bytes.NewReader(casesBody(t, testCases(4))))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %s, want 503", resp.Status)
	}
	if !strings.Contains(resp.Header.Get("Retry-After"), "1") {
		t.Fatalf("Retry-After = %q", resp.Header.Get("Retry-After"))
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
