// Package noisegw is the scatter-gather coordinator over a fleet of
// noised replicas: one gateway endpoint that accepts the same
// POST /v1/analyze a single replica does, shards the case set across
// the fleet by consistent hash of characterization bucket (victim
// driver cell × input-slew band, the unit of engine cache locality),
// streams every shard concurrently, and merges the per-net records back
// to the client in completion order with exactly-once delivery per net.
//
// The point of the gateway is the failure path:
//
//   - Replicas are health-probed; consecutive failures eject one with
//     an exponentially backed-off rejoin window (circuit breaking), and
//     a changed instance identity is recognized as a restart.
//   - A shard stream that tears mid-frame, stalls past the heartbeat
//     budget, or dies with its replica is detected, the replica is
//     struck, and the shard's unfinished nets are re-sharded onto the
//     surviving replicas — bounded by MaxReshards hops.
//   - Exactly-once per net is enforced at the merge: the first real
//     outcome for a net wins, replays from replica-side journal resume
//     or hedged duplicates are dropped, and canceled placeholders never
//     finalize a net (the reshard completes it instead).
//   - A shard making no progress for HedgeAfter is hedged: the
//     remaining nets are duplicated onto another replica and whichever
//     stream answers first wins the merge.
//   - Backpressure propagates end to end: replica sheds (503) back off
//     the sub-request with capped jittered delays, and the gateway's
//     own admission gate sheds clients with 503 + Retry-After when the
//     fleet is saturated or empty.
//
// The wire is exactly the noised wire — NDJSON or negotiated colblob
// frames, heartbeats included, terminated by the same summary schema —
// so noisectl and client.Client work against a gateway unchanged.
package noisegw

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"net/http"
	"time"

	"repro/internal/metrics"
	"repro/internal/noiseerr"
)

// Config assembles a Gateway. Replicas is required; everything else
// has serving defaults.
type Config struct {
	// Replicas are the noised base URLs to scatter over, e.g.
	// ["http://127.0.0.1:9001", "http://127.0.0.1:9002"].
	Replicas []string

	// MaxInflight bounds concurrently coordinated requests (default 4).
	MaxInflight int
	// MaxQueue bounds admitted requests waiting for a slot (default 16);
	// beyond it clients are shed with 503 + Retry-After.
	MaxQueue int
	// MaxNets caps one request's case count (default 200000 — the
	// gateway exists to take batches no single replica would).
	MaxNets int
	// MaxBodyBytes caps the request body (default 512 MiB).
	MaxBodyBytes int64
	// RetryAfter is the backoff hint on 503 responses (default 1s).
	RetryAfter time.Duration
	// MaxRequestTimeout caps the per-request "timeout" query parameter
	// and applies when the client sends none (default 15m; negative
	// disables the cap).
	MaxRequestTimeout time.Duration
	// DrainTimeout bounds the graceful drain (default 60s).
	DrainTimeout time.Duration
	// Heartbeat is the keepalive interval on the gateway's own client
	// streams (default 10s; negative disables).
	Heartbeat time.Duration

	// ProbeInterval is the replica health-probe period (default 2s).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one /readyz probe (default 2s).
	ProbeTimeout time.Duration
	// MaxStrikes is the consecutive-failure count that trips a
	// replica's breaker (default 3; probes and streams both count).
	MaxStrikes int
	// EjectBackoff is the first ejection window (default 1s); each
	// consecutive trip doubles it up to MaxEjectBackoff (default 30s).
	EjectBackoff    time.Duration
	MaxEjectBackoff time.Duration

	// StallTimeout ejects a shard stream that has produced no event —
	// record, heartbeat, or summary — for this long (default 30s; it
	// must comfortably exceed the replicas' heartbeat interval).
	StallTimeout time.Duration
	// HedgeAfter duplicates a shard's remaining nets onto another
	// replica after this long without progress (default 0 = disabled;
	// it should sit below StallTimeout to be useful).
	HedgeAfter time.Duration
	// MaxReshards bounds how many times one net may be redistributed
	// after failures before the gateway reports it failed (default 4).
	MaxReshards int
	// ShedRetries is how many consecutive 503s one sub-request absorbs
	// before the shard is resharded elsewhere (default 5).
	ShedRetries int
	// ShedBackoff is the base backoff between shed retries (default
	// 200ms, doubling, capped at MaxShedBackoff default 5s, jittered).
	ShedBackoff    time.Duration
	MaxShedBackoff time.Duration

	// HTTPClient overrides the transport to the replicas (nil uses
	// http.DefaultClient; the default has no overall timeout, which a
	// long-lived shard stream needs).
	HTTPClient *http.Client
	// Metrics receives gateway instrumentation (nil installs a fresh
	// registry).
	Metrics *metrics.Registry
	// Logf receives health transitions and recovery decisions (nil =
	// silent).
	Logf func(format string, args ...any)
}

// Defaults, exported so cmd/noisegw flag help and the tests agree with
// the gateway.
const (
	DefaultMaxInflight       = 4
	DefaultMaxQueue          = 16
	DefaultMaxNets           = 200000
	DefaultMaxBodyBytes      = 512 << 20
	DefaultRetryAfter        = time.Second
	DefaultMaxRequestTimeout = 15 * time.Minute
	DefaultDrainTimeout      = 60 * time.Second
	DefaultHeartbeat         = 10 * time.Second
	DefaultProbeInterval     = 2 * time.Second
	DefaultProbeTimeout      = 2 * time.Second
	DefaultMaxStrikes        = 3
	DefaultEjectBackoff      = time.Second
	DefaultMaxEjectBackoff   = 30 * time.Second
	DefaultStallTimeout      = 30 * time.Second
	DefaultMaxReshards       = 4
	DefaultShedRetries       = 5
	DefaultShedBackoff       = 200 * time.Millisecond
	DefaultMaxShedBackoff    = 5 * time.Second
)

func (c *Config) defaults() {
	if c.MaxInflight <= 0 {
		c.MaxInflight = DefaultMaxInflight
	}
	if c.MaxQueue < 0 {
		c.MaxQueue = 0
	} else if c.MaxQueue == 0 {
		c.MaxQueue = DefaultMaxQueue
	}
	if c.MaxNets <= 0 {
		c.MaxNets = DefaultMaxNets
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = DefaultRetryAfter
	}
	if c.MaxRequestTimeout == 0 {
		c.MaxRequestTimeout = DefaultMaxRequestTimeout
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = DefaultDrainTimeout
	}
	if c.Heartbeat == 0 {
		c.Heartbeat = DefaultHeartbeat
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = DefaultProbeInterval
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = DefaultProbeTimeout
	}
	if c.MaxStrikes <= 0 {
		c.MaxStrikes = DefaultMaxStrikes
	}
	if c.EjectBackoff <= 0 {
		c.EjectBackoff = DefaultEjectBackoff
	}
	if c.MaxEjectBackoff <= 0 {
		c.MaxEjectBackoff = DefaultMaxEjectBackoff
	}
	if c.StallTimeout <= 0 {
		c.StallTimeout = DefaultStallTimeout
	}
	if c.MaxReshards <= 0 {
		c.MaxReshards = DefaultMaxReshards
	}
	if c.ShedRetries <= 0 {
		c.ShedRetries = DefaultShedRetries
	}
	if c.ShedBackoff <= 0 {
		c.ShedBackoff = DefaultShedBackoff
	}
	if c.MaxShedBackoff <= 0 {
		c.MaxShedBackoff = DefaultMaxShedBackoff
	}
	if c.HTTPClient == nil {
		c.HTTPClient = http.DefaultClient
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
}

// Gateway is the scatter-gather coordinator. Build one with New; it is
// safe for concurrent use.
type Gateway struct {
	cfg      Config
	reg      *metrics.Registry
	client   *http.Client
	set      *replicaSet
	adm      *admission
	mux      *http.ServeMux
	started  time.Time
	instance string
}

// New builds a gateway from cfg (see Config for zero-value defaults).
func New(cfg Config) (*Gateway, error) {
	cfg.defaults()
	if len(cfg.Replicas) == 0 {
		return nil, noiseerr.Invalidf("noisegw: at least one replica required")
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	g := &Gateway{
		cfg:      cfg,
		reg:      reg,
		client:   cfg.HTTPClient,
		started:  time.Now(),
		instance: newInstanceID(),
	}
	g.set = newReplicaSet(g, cfg.Replicas)
	g.adm = newAdmission(cfg.MaxInflight, cfg.MaxQueue, reg)
	g.mux = http.NewServeMux()
	g.mux.HandleFunc("POST /v1/analyze", g.handleAnalyze)
	g.mux.HandleFunc("POST /v1/analyze-path", g.handleAnalyzePath)
	g.mux.HandleFunc("GET /healthz", g.handleHealthz)
	g.mux.HandleFunc("GET /readyz", g.handleReadyz)
	g.mux.HandleFunc("GET /metrics", g.handleMetrics)
	return g, nil
}

// Metrics returns the gateway's instrumentation registry.
func (g *Gateway) Metrics() *metrics.Registry { return g.reg }

// Handler returns the gateway's HTTP handler, for mounting under
// httptest or a custom http.Server.
func (g *Gateway) Handler() http.Handler { return g.mux }

// Instance returns the gateway's random per-process identity.
func (g *Gateway) Instance() string { return g.instance }

// Draining reports whether the gateway has begun its graceful drain.
func (g *Gateway) Draining() bool { return g.adm.draining() }

// Drain flips the gateway into drain mode: /readyz answers 503 and new
// requests are refused while in-flight merges run to completion.
func (g *Gateway) Drain() { g.adm.drain() }

// ProbeReplicas runs one health-probe round outside the Serve loop —
// embedders and tests advance the replica state machine with it.
func (g *Gateway) ProbeReplicas(ctx context.Context) { g.set.probeOnce(ctx) }

// newInstanceID mints the gateway's random per-process identity, the
// same shape noised replicas expose.
func newInstanceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "instance-unavailable"
	}
	return hex.EncodeToString(b[:])
}
