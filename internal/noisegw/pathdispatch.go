package noisegw

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/clarinet"
	"repro/internal/colblob"
	"repro/internal/noised"
	"repro/internal/noiseerr"
	"repro/internal/pathnoise"
	"repro/internal/workload"
)

// Path routing. A path is analyzed end to end on one replica: its
// stages chain (stage k's noisy receiver-output waveform is stage k+1's
// victim input), so splitting one path across replicas would serialize
// every boundary on a cross-replica handoff and forfeit the stage
// journal's locality. The gateway therefore shards whole paths by
// consistent hash of path name — one replica owns every stage of a
// path — and merges the stage-record streams back to the client.
//
// Exactly-once per path rests on the Done record: pathnoise emits a
// Done stage record when a path completes (success or a terminal
// failure such as a per-path deadline) and journals nothing for
// caller-canceled paths, so "no adopted report yet" is precisely "safe
// to reshard onto a survivor".

// shardPaths distributes whole paths over the named replicas by
// consistent hash of path name. The "path/" prefix keeps path keys in
// their own hash family, distinct from the per-net bucket keys.
func shardPaths(paths []workload.PathJSON, names []string) map[string][]workload.PathJSON {
	r := newRing(names)
	out := make(map[string][]workload.PathJSON, len(names))
	for _, p := range paths {
		owner := r.owner("path/" + p.Name)
		out[owner] = append(out[owner], p)
	}
	return out
}

// pathRun is the per-request coordinator state of one analyze-path
// scatter.
type pathRun struct {
	g      *Gateway
	ctx    context.Context
	cancel context.CancelFunc
	start  time.Time

	tech       string
	caseByName map[string]workload.CaseJSON
	query      url.Values
	requestID  string

	// sink carries merged stage records to the handler's loop; closed by
	// the closer goroutine once every worker has exited.
	sink chan pathnoise.StageRecord

	mu      sync.Mutex
	seen    map[pathnoise.StageKey]bool      // stage-record dedupe
	reports map[string]*pathnoise.PathReport // path -> first real outcome
	resumed int                              // stages adopted from replica journals

	wg sync.WaitGroup
}

func (g *Gateway) newPathRun(ctx context.Context, cancel context.CancelFunc, file workload.FileJSON, query url.Values, requestID string) *pathRun {
	byName := make(map[string]workload.CaseJSON, len(file.Cases))
	for _, c := range file.Cases {
		byName[c.Name] = c
	}
	return &pathRun{
		g:          g,
		ctx:        ctx,
		cancel:     cancel,
		start:      time.Now(),
		tech:       file.Technology,
		caseByName: byName,
		query:      query,
		requestID:  requestID,
		sink:       make(chan pathnoise.StageRecord, 64),
		seen:       map[pathnoise.StageKey]bool{},
		reports:    map[string]*pathnoise.PathReport{},
	}
}

// scatter shards the paths over the healthy replicas and spawns one
// worker per shard plus the sink closer.
func (r *pathRun) scatter(paths []workload.PathJSON) error {
	names := r.g.set.healthyNames()
	if len(names) == 0 {
		return errNoReplicas
	}
	for name, shard := range shardPaths(paths, names) {
		r.spawn(name, shard, 0)
	}
	//lint:ignore noiselint/goleak joins r.wg, whose workers all exit once r.ctx dies; the close unblocks the merge loop
	go func() {
		r.wg.Wait()
		close(r.sink)
	}()
	return nil
}

func (r *pathRun) spawn(replica string, paths []workload.PathJSON, attempt int) {
	r.wg.Add(1)
	//lint:ignore noiselint/goleak runShard defers wg.Done and every blocking path inside it selects on r.ctx; the closer joins the wg
	go r.runShard(replica, paths, attempt)
}

// runShard drives one path shard against one replica, then re-shards
// the paths that did not reach a real outcome.
func (r *pathRun) runShard(replica string, paths []workload.PathJSON, attempt int) {
	defer r.wg.Done()
	leftover, avoid := r.streamShard(replica, paths)
	leftover = r.unfinished(leftover)
	if len(leftover) == 0 || r.ctx.Err() != nil {
		return
	}
	if attempt >= r.g.cfg.MaxReshards {
		r.g.cfg.Logf("noisegw: %d paths exhausted their %d reshard hops", len(leftover), r.g.cfg.MaxReshards)
		return
	}
	targets := r.g.set.healthyNames()
	if avoid {
		targets = r.g.set.healthyExcept(replica)
	}
	if len(targets) == 0 {
		r.g.cfg.Logf("noisegw: %d paths unassigned: no healthy replicas to reshard onto", len(leftover))
		return
	}
	r.g.reg.Counter(mGwReshards).Inc()
	r.g.cfg.Logf("noisegw: resharding %d paths from %s over %d replicas (hop %d)",
		len(leftover), replica, len(targets), attempt+1)
	for name, shard := range shardPaths(leftover, targets) {
		r.spawn(name, shard, attempt+1)
	}
}

// streamShard runs one shard sub-request, absorbing shed responses with
// the same capped jittered backoff the net dispatcher uses.
func (r *pathRun) streamShard(replica string, paths []workload.PathJSON) (leftover []workload.PathJSON, avoid bool) {
	body, err := pathShardBody(r.tech, paths, r.caseByName)
	if err != nil {
		r.g.cfg.Logf("noisegw: path shard body: %v", err)
		return paths, true
	}
	sheds := 0
	for {
		outcome, retryAfter := r.streamOnce(replica, paths, body)
		switch outcome {
		case streamDone:
			r.g.set.clearStrikes(replica)
			return paths, false // canceled paths remain for the caller to reshard
		case streamShed:
			sheds++
			if sheds > r.g.cfg.ShedRetries {
				return paths, true
			}
			if !r.sleepShed(sheds, retryAfter) {
				return nil, false
			}
		case streamFailed:
			r.g.set.strike(replica)
			return paths, true
		default: // streamCtxDone
			return nil, false
		}
	}
}

// sleepShed mirrors run.sleepShed for the path dispatcher.
func (r *pathRun) sleepShed(sheds int, retryAfter time.Duration) bool {
	nr := run{g: r.g, ctx: r.ctx}
	return nr.sleepShed(sheds, retryAfter)
}

// pathStreamEvent is one parsed element of a path shard stream.
type pathStreamEvent struct {
	rec     pathnoise.StageRecord
	summary *noised.PathSummary
	err     error
}

// streamOnce opens one analyze-path sub-request and consumes its
// stream, merging stage records as they arrive and adopting the path
// reports from the terminal summary. The stall watchdog mirrors the net
// dispatcher's; paths are not hedged — a duplicated path re-runs every
// stage, which the stage-record dedupe would mask but the fleet would
// still pay for.
func (r *pathRun) streamOnce(replica string, paths []workload.PathJSON, body []byte) (streamOutcome, time.Duration) {
	subctx, subcancel := context.WithCancel(r.ctx)
	defer subcancel()
	shardStart := time.Now()

	u := replica + "/v1/analyze-path"
	if q := r.subQuery(paths); q != "" {
		u += "?" + q
	}
	req, err := http.NewRequestWithContext(subctx, http.MethodPost, u, bytes.NewReader(body))
	if err != nil {
		return streamFailed, 0
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := r.g.client.Do(req)
	if err != nil {
		if r.ctx.Err() != nil {
			return streamCtxDone, 0
		}
		return streamFailed, 0
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusServiceUnavailable, http.StatusTooManyRequests:
		io.Copy(io.Discard, io.LimitReader(resp.Body, 512))
		r.g.reg.Counter(mGwShardShed).Inc()
		return streamShed, parseRetryAfter(resp.Header.Get("Retry-After"))
	default:
		r.g.cfg.Logf("noisegw: replica %s answered %s to analyze-path", replica, resp.Status)
		return streamFailed, 0
	}
	r.g.reg.Counter(mGwShardStreams).Inc()

	events := make(chan pathStreamEvent)
	// Bounded by subctx like the net reader: every send selects on it.
	go readPathShardStream(subctx, resp.Body, events)

	stall := time.NewTimer(r.g.cfg.StallTimeout)
	defer stall.Stop()
	for {
		select {
		case ev, ok := <-events:
			if !ok || ev.err != nil {
				r.g.reg.Counter(mGwShardTorn).Inc()
				return streamFailed, 0
			}
			if !stall.Stop() {
				select {
				case <-stall.C:
				default:
				}
			}
			stall.Reset(r.g.cfg.StallTimeout)
			switch {
			case ev.summary != nil:
				r.adoptReports(ev.summary)
				r.g.reg.Histogram(mGwShardLatency).Observe(time.Since(shardStart))
				return streamDone, 0
			case ev.rec.Path != "":
				r.mergeStage(ev.rec)
			}
		case <-stall.C:
			r.g.reg.Counter(mGwShardStalled).Inc()
			r.g.cfg.Logf("noisegw: replica %s path stream stalled past %v", replica, r.g.cfg.StallTimeout)
			return streamFailed, 0
		case <-r.ctx.Done():
			return streamCtxDone, 0
		}
	}
}

// readPathShardStream parses the replica's NDJSON analyze-path stream
// into events, bounded by ctx.
func readPathShardStream(ctx context.Context, body io.Reader, events chan<- pathStreamEvent) {
	defer close(events)
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 0, 256*1024), 16<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var sl noised.PathStreamLine
		if err := json.Unmarshal(line, &sl); err != nil {
			select {
			case events <- pathStreamEvent{err: fmt.Errorf("noisegw: malformed path stream line: %w", err)}:
			case <-ctx.Done():
			}
			return
		}
		ev := pathStreamEvent{rec: sl.StageRecord, summary: sl.Summary}
		select {
		case events <- ev:
		case <-ctx.Done():
			return
		}
		if sl.Summary != nil {
			return
		}
	}
	if err := sc.Err(); err != nil {
		select {
		case events <- pathStreamEvent{err: err}:
		case <-ctx.Done():
		}
	}
}

// mergeStage forwards one stage record to the client, deduplicating by
// (path, stage, iter): replays from replica-side journal resume after a
// shed retry present the same key and drop.
func (r *pathRun) mergeStage(rec pathnoise.StageRecord) {
	r.mu.Lock()
	if r.seen[rec.Key()] {
		r.mu.Unlock()
		r.g.reg.Counter(mGwStagesDuplicate).Inc()
		return
	}
	r.seen[rec.Key()] = true
	r.mu.Unlock()
	r.g.reg.Counter(mGwStagesMerged).Inc()
	select {
	case r.sink <- rec:
	case <-r.ctx.Done():
	}
}

// adoptReports takes a sub-summary's path reports: the first real
// outcome per path wins. Canceled reports never finalize a path — the
// replica was cut off mid-path and journaled nothing, so the reshard
// completes it instead.
func (r *pathRun) adoptReports(sum *noised.PathSummary) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.resumed += sum.StagesResumed
	for _, rep := range sum.Reports {
		if rep == nil || rep.Class == "canceled" {
			continue
		}
		if r.reports[rep.Name] == nil {
			r.reports[rep.Name] = rep
			r.g.reg.Counter(mGwPathsMerged).Inc()
		}
	}
}

// unfinished filters paths down to those without an adopted report.
func (r *pathRun) unfinished(paths []workload.PathJSON) []workload.PathJSON {
	if len(paths) == 0 {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []workload.PathJSON
	for _, p := range paths {
		if r.reports[p.Name] == nil {
			out = append(out, p)
		}
	}
	return out
}

// report returns the adopted report for a path, nil when none finished.
func (r *pathRun) report(name string) *pathnoise.PathReport {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.reports[name]
}

func (r *pathRun) stagesResumed() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.resumed
}

// subQuery renders one path shard's query string.
func (r *pathRun) subQuery(paths []workload.PathJSON) string {
	q := url.Values{}
	for k, vs := range r.query {
		q[k] = vs
	}
	if id := r.subRequestID(paths); id != "" {
		q.Set("request_id", id)
	}
	return q.Encode()
}

// subRequestID derives a stable per-shard journal identity from the
// client's request_id and the shard's path names — the "-p" family,
// disjoint from the net dispatcher's "-s" shard IDs.
func (r *pathRun) subRequestID(paths []workload.PathJSON) string {
	if r.requestID == "" {
		return ""
	}
	h := fnv.New64a()
	for _, p := range paths {
		h.Write([]byte(p.Name))
		h.Write([]byte{0})
	}
	return fmt.Sprintf("%s-p%08x", r.requestID, h.Sum64()&0xffffffff)
}

// pathShardBody serializes one path shard: the shard's path definitions
// plus exactly the stage cases they reference, in path order.
func pathShardBody(tech string, paths []workload.PathJSON, byName map[string]workload.CaseJSON) ([]byte, error) {
	f := workload.FileJSON{Technology: tech, Paths: paths}
	added := map[string]bool{}
	for _, p := range paths {
		for _, stage := range p.Stages {
			if added[stage] {
				continue
			}
			c, ok := byName[stage]
			if !ok {
				return nil, noiseerr.Invalidf("noisegw: path %s references unknown case %q", p.Name, stage)
			}
			f.Cases = append(f.Cases, c)
			added[stage] = true
		}
	}
	return json.Marshal(f)
}

// pathStreamWriter mirrors the noised analyze-path response encodings.
type pathStreamWriter interface {
	record(rec pathnoise.StageRecord) error
	heartbeat() error
	summary(sum *noised.PathSummary) error
}

type ndjsonPathStream struct{ enc *json.Encoder }

func (s ndjsonPathStream) record(rec pathnoise.StageRecord) error { return s.enc.Encode(rec) }
func (s ndjsonPathStream) heartbeat() error {
	return s.enc.Encode(noised.PathStreamLine{Heartbeat: true})
}
func (s ndjsonPathStream) summary(sum *noised.PathSummary) error {
	return s.enc.Encode(noised.PathStreamLine{Summary: sum})
}

// colblobPathStream re-encodes merged stage records as FramePathStage
// frames. Stage frames are self-contained, so re-encoding is purely a
// normalization (the client sees one coherent stream).
type colblobPathStream struct {
	w   io.Writer
	sw  pathnoise.StageWriter
	buf []byte
}

func newColblobPathStream(w io.Writer) *colblobPathStream {
	return &colblobPathStream{w: w, sw: pathnoise.BinaryStages.NewWriter(w)}
}

func (s *colblobPathStream) record(rec pathnoise.StageRecord) error {
	return s.sw.WriteStage(rec)
}

func (s *colblobPathStream) heartbeat() error {
	s.buf = colblob.AppendFrame(s.buf[:0], colblob.FrameHeartbeat, nil)
	_, err := s.w.Write(s.buf)
	return err
}

func (s *colblobPathStream) summary(sum *noised.PathSummary) error {
	payload, err := json.Marshal(sum)
	if err != nil {
		return err
	}
	s.buf = colblob.AppendFrame(s.buf[:0], colblob.FrameSummary, payload)
	_, err = s.w.Write(s.buf)
	return err
}

func negotiatePathStream(r *http.Request, w http.ResponseWriter) (pathStreamWriter, string) {
	if strings.Contains(r.Header.Get("Accept"), clarinet.ContentTypeColblob) {
		return newColblobPathStream(w), clarinet.ContentTypeColblob
	}
	return ndjsonPathStream{enc: json.NewEncoder(w)}, clarinet.ContentTypeNDJSON
}

// parseAnalyzePathOptions extends the forwarded options with the
// path-mode knobs.
func (g *Gateway) parseAnalyzePathOptions(r *http.Request) (analyzeOptions, error) {
	opt, err := g.parseAnalyzeOptions(r)
	if err != nil {
		return opt, err
	}
	q := r.URL.Query()
	if v := q.Get("path_iterations"); v != "" {
		if n, err := strconv.Atoi(v); err != nil || n < 1 {
			return opt, noiseerr.Invalidf("noisegw: bad path_iterations %q", v)
		}
		opt.forward.Set("path_iterations", v)
	}
	if v := q.Get("path_timeout"); v != "" {
		if d, err := time.ParseDuration(v); err != nil || d < 0 {
			return opt, noiseerr.Invalidf("noisegw: bad path_timeout %q", v)
		}
		opt.forward.Set("path_timeout", v)
	}
	return opt, nil
}

// handleAnalyzePath is POST /v1/analyze-path: validation, admission,
// the whole-path scatter, and the merge loop.
func (g *Gateway) handleAnalyzePath(w http.ResponseWriter, r *http.Request) {
	g.reg.Counter(mGwRequests).Inc()
	if g.adm.draining() {
		g.reg.Counter(mGwRejectedDraining).Inc()
		g.unavailable(w, "draining")
		return
	}
	opt, err := g.parseAnalyzePathOptions(r)
	if err != nil {
		g.reg.Counter(mGwRejectedValidation).Inc()
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, g.cfg.MaxBodyBytes)
	var file workload.FileJSON
	if err := json.NewDecoder(r.Body).Decode(&file); err != nil {
		g.reg.Counter(mGwRejectedValidation).Inc()
		http.Error(w, fmt.Sprintf("noisegw: decode: %v", err), http.StatusBadRequest)
		return
	}
	if err := validatePathFile(file, g.cfg.MaxNets); err != nil {
		g.reg.Counter(mGwRejectedValidation).Inc()
		status := http.StatusBadRequest
		if len(file.Cases) > g.cfg.MaxNets {
			status = http.StatusRequestEntityTooLarge
		}
		http.Error(w, err.Error(), status)
		return
	}

	switch err := g.adm.acquire(r.Context()); err {
	case nil:
		defer g.adm.release()
	case errQueueFull, errDraining:
		g.reg.Counter(mGwRejectedQueue).Inc()
		g.unavailable(w, err.Error())
		return
	default:
		return // the client went away while queued
	}

	ctx := r.Context()
	var cancel context.CancelFunc
	if opt.timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, opt.timeout)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	defer cancel()

	run := g.newPathRun(ctx, cancel, file, opt.forward, opt.requestID)
	if err := run.scatter(file.Paths); err != nil {
		g.reg.Counter(mGwRejectedNoReplicas).Inc()
		g.unavailable(w, err.Error())
		return
	}

	stream, contentType := negotiatePathStream(r, w)
	w.Header().Set("Content-Type", contentType)
	w.Header().Set("Cache-Control", "no-store")
	w.Header().Set(noised.InstanceHeader, g.instance)
	if opt.requestID != "" {
		w.Header().Set("X-Request-ID", opt.requestID)
	}
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)
	rc.Flush()

	sum := noised.PathSummary{RequestID: opt.requestID, Paths: len(file.Paths)}
	writeOK := true
	var hbC <-chan time.Time
	var hb *time.Ticker
	if g.cfg.Heartbeat > 0 {
		hb = time.NewTicker(g.cfg.Heartbeat)
		defer hb.Stop()
		hbC = hb.C
	}
merge:
	for {
		select {
		case rec, ok := <-run.sink:
			if !ok {
				break merge
			}
			if !writeOK {
				continue // drain the merge after a broken pipe
			}
			if err := stream.record(rec); err != nil {
				writeOK = false
				cancel()
				continue
			}
			rc.Flush()
			if hb != nil {
				hb.Reset(g.cfg.Heartbeat)
			}
		case <-hbC:
			if !writeOK {
				continue
			}
			if err := stream.heartbeat(); err != nil {
				writeOK = false
				cancel()
				continue
			}
			rc.Flush()
		}
	}
	if !writeOK {
		return
	}
	// Every worker has exited: paths without an adopted report are
	// definitively unfinished. The summary carries the reports in the
	// client's path order, the same order pathnoise.Assemble uses.
	for _, pj := range file.Paths {
		rep := run.report(pj.Name)
		if rep == nil {
			g.reg.Counter(mGwPathsUnassigned).Inc()
			rep = unfinishedPathReport(pj.Name, ctx)
		}
		switch {
		case rep.Class == "canceled":
			sum.Canceled++
		case rep.Failed():
			sum.Failed++
		default:
			sum.OK++
		}
		sum.Reports = append(sum.Reports, rep)
	}
	sum.StagesResumed = run.stagesResumed()
	sum.ElapsedMS = time.Since(run.start).Milliseconds()
	sum.Deadline = ctx.Err() == context.DeadlineExceeded
	sum.Draining = g.adm.draining()
	if err := stream.summary(&sum); err == nil {
		rc.Flush()
	}
}

// validatePathFile checks the structural invariants the gateway can
// enforce without a device library: unique case and path names, every
// stage resolvable, a non-empty path set, and the net cap.
func validatePathFile(file workload.FileJSON, maxNets int) error {
	if len(file.Paths) == 0 {
		return noiseerr.Invalidf("noisegw: case set defines no paths")
	}
	if len(file.Cases) > maxNets {
		return noiseerr.Invalidf("noisegw: %d stage cases exceeds the limit %d", len(file.Cases), maxNets)
	}
	cases := make(map[string]bool, len(file.Cases))
	for _, c := range file.Cases {
		if c.Name == "" || cases[c.Name] {
			return noiseerr.Invalidf("noisegw: missing or duplicate net name %q", c.Name)
		}
		cases[c.Name] = true
	}
	paths := make(map[string]bool, len(file.Paths))
	for _, p := range file.Paths {
		if p.Name == "" || paths[p.Name] {
			return noiseerr.Invalidf("noisegw: missing or duplicate path name %q", p.Name)
		}
		paths[p.Name] = true
		if len(p.Stages) == 0 {
			return noiseerr.Invalidf("noisegw: path %s has no stages", p.Name)
		}
		for _, stage := range p.Stages {
			if !cases[stage] {
				return noiseerr.Invalidf("noisegw: path %s references unknown case %q", p.Name, stage)
			}
		}
	}
	return nil
}

// unfinishedPathReport renders the terminal report of a path no replica
// completed: canceled when the run was cut short, a reshard-budget
// failure otherwise.
func unfinishedPathReport(name string, ctx context.Context) *pathnoise.PathReport {
	rep := &pathnoise.PathReport{Name: name}
	if ctx.Err() != nil {
		rep.Class = "canceled"
		rep.Error = fmt.Sprintf("noisegw: run canceled before path completed: %v", ctx.Err())
	} else {
		rep.Class = noiseerr.ClassName(noiseerr.ErrInternal) // "internal"
		rep.Error = "noisegw: reshard budget exhausted with no healthy replica finishing the path"
	}
	return rep
}
