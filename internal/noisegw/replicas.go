package noisegw

import (
	"context"
	"net/http"
	"sync"
	"time"

	"repro/internal/noised"
)

// Replica health. Each replica runs a small state machine driven by two
// evidence sources: the periodic /readyz probe and the outcome of real
// shard streams. Consecutive failures (circuit-breaker style) eject the
// replica — it stops receiving shards — for an exponentially growing
// backoff window; after the window a successful probe rejoins it with a
// clean slate. A shed (503) is not a failure: the replica is alive and
// telling us to back off, so it keeps its shard assignment and only
// the sub-request waits.

// replicaState is one replica's view in the health state machine.
type replicaState struct {
	name string // base URL, e.g. "http://127.0.0.1:9001"

	mu           sync.Mutex
	healthy      bool
	strikes      int           // consecutive failures while healthy
	ejectedUntil time.Time     // earliest rejoin probe while ejected
	backoff      time.Duration // next ejection's window
	instance     string        // last seen X-Noised-Instance
}

// replicaSet owns the gateway's replicas and their probe loop.
type replicaSet struct {
	g        *Gateway
	replicas []*replicaState // fixed order, as configured
}

func newReplicaSet(g *Gateway, names []string) *replicaSet {
	rs := &replicaSet{g: g}
	for _, n := range names {
		// Optimistic start: replicas are assumed healthy until a probe
		// or stream says otherwise, so the gateway serves immediately
		// after boot instead of 503ing until the first probe round.
		rs.replicas = append(rs.replicas, &replicaState{
			name:    n,
			healthy: true,
			backoff: g.cfg.EjectBackoff,
		})
	}
	g.reg.Gauge(mGwReplicasHealthy).Set(int64(len(names)))
	return rs
}

// healthyNames returns the replicas currently eligible for shards.
func (rs *replicaSet) healthyNames() []string {
	var out []string
	for _, r := range rs.replicas {
		r.mu.Lock()
		if r.healthy {
			out = append(out, r.name)
		}
		r.mu.Unlock()
	}
	return out
}

// healthyExcept returns the eligible replicas minus one — the reshard
// targets after that one failed mid-stream.
func (rs *replicaSet) healthyExcept(name string) []string {
	var out []string
	for _, r := range rs.replicas {
		r.mu.Lock()
		if r.healthy && r.name != name {
			out = append(out, r.name)
		}
		r.mu.Unlock()
	}
	return out
}

func (rs *replicaSet) byName(name string) *replicaState {
	for _, r := range rs.replicas {
		if r.name == name {
			return r
		}
	}
	return nil
}

// strike records one failure of a replica (failed probe, torn or
// stalled stream, connect error). MaxStrikes consecutive failures trip
// the breaker: the replica is ejected for its current backoff window,
// and the window doubles for the next trip.
func (rs *replicaSet) strike(name string) {
	r := rs.byName(name)
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.healthy {
		// Already ejected (e.g. a concurrent stream failed after the
		// probe tripped the breaker); push the window out, don't
		// double-count.
		r.ejectedUntil = time.Now().Add(r.backoff)
		return
	}
	r.strikes++
	if r.strikes < rs.g.cfg.MaxStrikes {
		return
	}
	r.healthy = false
	r.strikes = 0
	r.ejectedUntil = time.Now().Add(r.backoff)
	r.backoff *= 2
	if r.backoff > rs.g.cfg.MaxEjectBackoff {
		r.backoff = rs.g.cfg.MaxEjectBackoff
	}
	rs.g.reg.Counter(mGwReplicaEjections).Inc()
	rs.g.reg.Gauge(mGwReplicasHealthy).Dec()
	rs.g.cfg.Logf("noisegw: replica %s ejected (rejoin probe in %v)", name, time.Until(r.ejectedUntil).Round(time.Millisecond))
}

// clearStrikes resets the consecutive-failure count after a successful
// interaction with a healthy replica.
func (rs *replicaSet) clearStrikes(name string) {
	if r := rs.byName(name); r != nil {
		r.mu.Lock()
		r.strikes = 0
		r.mu.Unlock()
	}
}

// probeOnce probes every replica's /readyz once and advances the state
// machine: a healthy replica that fails is struck, an ejected replica
// past its backoff window that answers 200 rejoins with a clean slate,
// and an instance-ID change is counted as a restart.
func (rs *replicaSet) probeOnce(ctx context.Context) {
	for _, r := range rs.replicas {
		r.mu.Lock()
		healthy := r.healthy
		waiting := !healthy && time.Now().Before(r.ejectedUntil)
		r.mu.Unlock()
		if waiting {
			continue // still inside the ejection window
		}
		ok, instance := rs.g.probeReady(ctx, r.name)
		switch {
		case ok && healthy:
			rs.clearStrikes(r.name)
		case ok && !healthy:
			r.mu.Lock()
			r.healthy = true
			r.strikes = 0
			r.backoff = rs.g.cfg.EjectBackoff
			r.mu.Unlock()
			rs.g.reg.Counter(mGwReplicaRejoins).Inc()
			rs.g.reg.Gauge(mGwReplicasHealthy).Inc()
			rs.g.cfg.Logf("noisegw: replica %s rejoined", r.name)
		case !ok:
			rs.strike(r.name)
		}
		if ok && instance != "" {
			r.mu.Lock()
			prev := r.instance
			r.instance = instance
			r.mu.Unlock()
			if prev != "" && prev != instance {
				rs.g.reg.Counter(mGwReplicaRestarts).Inc()
				rs.g.cfg.Logf("noisegw: replica %s restarted (instance %s -> %s)", r.name, prev, instance)
			}
		}
	}
}

// probeLoop probes until ctx dies. Serve runs it for the gateway's
// lifetime; tests drive probeOnce directly.
func (rs *replicaSet) probeLoop(ctx context.Context) {
	t := time.NewTicker(rs.g.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			rs.probeOnce(ctx)
		}
	}
}

// probeReady checks one replica's /readyz, returning its reported
// instance identity alongside.
func (g *Gateway) probeReady(ctx context.Context, name string) (ok bool, instance string) {
	pctx, cancel := context.WithTimeout(ctx, g.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, name+"/readyz", nil)
	if err != nil {
		return false, ""
	}
	resp, err := g.client.Do(req)
	if err != nil {
		return false, ""
	}
	defer resp.Body.Close()
	return resp.StatusCode == http.StatusOK, resp.Header.Get(noised.InstanceHeader)
}

// replicaHealth is one replica's row in the gateway /healthz payload.
type replicaHealth struct {
	Name     string `json:"name"`
	Healthy  bool   `json:"healthy"`
	Strikes  int    `json:"strikes,omitempty"`
	Instance string `json:"instance,omitempty"`
	// RejoinInS is how long until an ejected replica's next rejoin
	// probe (absent while healthy).
	RejoinInS float64 `json:"rejoin_in_s,omitempty"`
}

func (rs *replicaSet) health() []replicaHealth {
	out := make([]replicaHealth, 0, len(rs.replicas))
	for _, r := range rs.replicas {
		r.mu.Lock()
		h := replicaHealth{Name: r.name, Healthy: r.healthy, Strikes: r.strikes, Instance: r.instance}
		if !r.healthy {
			if until := time.Until(r.ejectedUntil); until > 0 {
				h.RejoinInS = until.Seconds()
			}
		}
		r.mu.Unlock()
		out = append(out, h)
	}
	return out
}
