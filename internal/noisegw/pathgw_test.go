package noisegw

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/noised"
	"repro/internal/pathnoise"
	"repro/internal/workload"
)

// fakePathReplica is a scripted analyze-path noised stand-in: it parses
// the path shard body, records which paths it was asked, and answers
// per the behave hook.
type fakePathReplica struct {
	t  *testing.T
	ts *httptest.Server

	mu       sync.Mutex
	calls    int
	askedIDs []string
	asked    [][]string // path names per call

	behave func(n int, w http.ResponseWriter, r *http.Request, file workload.FileJSON) bool
}

func newFakePathReplica(t *testing.T) *fakePathReplica {
	f := &fakePathReplica{t: t}
	f.ts = httptest.NewServer(http.HandlerFunc(f.handle))
	t.Cleanup(f.ts.Close)
	return f
}

func (f *fakePathReplica) handle(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/readyz" {
		fmt.Fprintln(w, "ok")
		return
	}
	if r.URL.Path != "/v1/analyze-path" {
		http.Error(w, "unexpected path "+r.URL.Path, http.StatusNotFound)
		return
	}
	var file workload.FileJSON
	if err := json.NewDecoder(r.Body).Decode(&file); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	names := make([]string, len(file.Paths))
	for i, p := range file.Paths {
		names[i] = p.Name
	}
	f.mu.Lock()
	f.calls++
	n := f.calls
	f.asked = append(f.asked, names)
	f.askedIDs = append(f.askedIDs, r.URL.Query().Get("request_id"))
	behave := f.behave
	f.mu.Unlock()
	if behave != nil && behave(n, w, r, file) {
		return
	}
	servePathsAll(w, file, nil)
}

func (f *fakePathReplica) callCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls
}

// pathsAsked returns the union of every path this replica was asked to
// analyze, and the per-call slices for atomicity checks.
func (f *fakePathReplica) pathsAsked() (map[string]bool, [][]string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := map[string]bool{}
	for _, names := range f.asked {
		for _, n := range names {
			out[n] = true
		}
	}
	return out, append([][]string(nil), f.asked...)
}

func stageRecord(path string, stage int, net string, done bool) pathnoise.StageRecord {
	return pathnoise.StageRecord{
		Path: path, Stage: stage, Net: net, Final: done, Done: done,
		Quality: "clean",
		Result: &pathnoise.StageResult{
			NoisyArr: float64(stage+1) * 1e-12, Cumulative: float64(stage+1) * 1e-13, Iterations: 1,
		},
	}
}

func pathReportFor(p workload.PathJSON) *pathnoise.PathReport {
	return &pathnoise.PathReport{
		Name: p.Name, Quality: "clean", Iterations: 1,
		PathDelayNoise: float64(len(p.Stages)) * 1e-13,
	}
}

// servePathsAll streams every stage record and a summary carrying a
// clean report per path; skip marks paths to cut off as canceled (no
// Done record, a "canceled" report) the way a draining replica would.
func servePathsAll(w http.ResponseWriter, file workload.FileJSON, skip map[string]bool) {
	sum := noised.PathSummary{Paths: len(file.Paths)}
	for _, p := range file.Paths {
		if skip[p.Name] {
			sum.Canceled++
			sum.Reports = append(sum.Reports, &pathnoise.PathReport{
				Name: p.Name, Class: "canceled", Error: "noised: path canceled: replica draining",
			})
			continue
		}
		for s, net := range p.Stages {
			writeLine(w, stageRecord(p.Name, s, net, s == len(p.Stages)-1))
		}
		sum.OK++
		sum.Reports = append(sum.Reports, pathReportFor(p))
	}
	writeLine(w, noised.PathStreamLine{Summary: &sum})
}

// pathFile builds n paths of the given stage count with enough cell
// variety that a small fleet shards them across replicas.
func pathFile(n, stages int) workload.FileJSON {
	f := workload.FileJSON{Technology: "default-180nm"}
	for i := 0; i < n; i++ {
		p := workload.PathJSON{Name: fmt.Sprintf("p%02d", i)}
		for s := 0; s < stages; s++ {
			name := fmt.Sprintf("p%02d.s%d", i, s)
			f.Cases = append(f.Cases, caseFor(name, fmt.Sprintf("CELL%d", (i+s)%7), 50e-12))
			p.Stages = append(p.Stages, name)
		}
		f.Paths = append(f.Paths, p)
	}
	return f
}

func pathBody(t *testing.T, file workload.FileJSON) []byte {
	t.Helper()
	b, err := json.Marshal(file)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// postAnalyzePath runs one gateway path request and decodes the stream.
func postAnalyzePath(t *testing.T, url string, body []byte) ([]pathnoise.StageRecord, *noised.PathSummary) {
	t.Helper()
	resp, err := http.Post(url+"/v1/analyze-path", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("status = %s: %s", resp.Status, b)
	}
	var recs []pathnoise.StageRecord
	var sum *noised.PathSummary
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 256*1024), 16<<20)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var sl noised.PathStreamLine
		if err := json.Unmarshal(sc.Bytes(), &sl); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		switch {
		case sl.Summary != nil:
			sum = sl.Summary
		case sl.Path != "":
			recs = append(recs, sl.StageRecord)
		case sl.Heartbeat:
		default:
			t.Fatalf("unclassifiable stream line %q", sc.Text())
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return recs, sum
}

func newPathGateway(t *testing.T, mutate func(*Config), replicas ...*fakePathReplica) (*Gateway, *httptest.Server) {
	t.Helper()
	cfg := Config{
		RetryAfter:   time.Second,
		StallTimeout: 5 * time.Second,
		ShedBackoff:  time.Millisecond,
		EjectBackoff: 10 * time.Millisecond,
	}
	for _, f := range replicas {
		cfg.Replicas = append(cfg.Replicas, f.ts.URL)
	}
	if mutate != nil {
		mutate(&cfg)
	}
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(g.Handler())
	t.Cleanup(ts.Close)
	return g, ts
}

// TestGatewayPathMerge is the happy path: three replicas, every path
// pinned whole to exactly one replica, every stage record merged
// exactly once, reports in client path order.
func TestGatewayPathMerge(t *testing.T) {
	a, b, c := newFakePathReplica(t), newFakePathReplica(t), newFakePathReplica(t)
	_, ts := newPathGateway(t, nil, a, b, c)
	file := pathFile(12, 3)

	recs, sum := postAnalyzePath(t, ts.URL, pathBody(t, file))
	if sum == nil || sum.Paths != 12 || sum.OK != 12 || sum.Failed != 0 || sum.Canceled != 0 {
		t.Fatalf("summary %+v", sum)
	}
	seen := map[pathnoise.StageKey]int{}
	for _, r := range recs {
		seen[r.Key()]++
	}
	if len(recs) != 12*3 {
		t.Fatalf("merged %d stage records, want %d", len(recs), 12*3)
	}
	for k, n := range seen {
		if n != 1 {
			t.Fatalf("stage %+v merged %d times", k, n)
		}
	}
	if len(sum.Reports) != 12 {
		t.Fatalf("%d reports", len(sum.Reports))
	}
	for i, rep := range sum.Reports {
		if rep.Name != file.Paths[i].Name {
			t.Fatalf("report %d is %s, want client order %s", i, rep.Name, file.Paths[i].Name)
		}
	}

	// Whole-path pinning: no path may be split across replicas, and
	// every stage of a path must ride in the same sub-request body.
	owners := map[string]int{}
	for i, f := range []*fakePathReplica{a, b, c} {
		asked, _ := f.pathsAsked()
		for p := range asked {
			if prev, ok := owners[p]; ok {
				t.Fatalf("path %s asked of replicas %d and %d", p, prev, i)
			}
			owners[p] = i
		}
	}
	if len(owners) != 12 {
		t.Fatalf("%d paths assigned, want 12", len(owners))
	}
}

// TestGatewayPathReplicaDeathReshard kills one replica mid-stream: the
// paths it left without a Done record must reshard onto the survivor
// and finish, with the already-merged stage records not re-emitted to
// the client.
func TestGatewayPathReplicaDeathReshard(t *testing.T) {
	healthy := newFakePathReplica(t)
	dying := newFakePathReplica(t)
	dying.behave = func(n int, w http.ResponseWriter, r *http.Request, file workload.FileJSON) bool {
		// Emit the first stage of the first path, then die without a
		// summary — a torn stream.
		p := file.Paths[0]
		writeLine(w, stageRecord(p.Name, 0, p.Stages[0], false))
		if fl, ok := w.(http.Flusher); ok {
			fl.Flush()
		}
		panic(http.ErrAbortHandler)
	}
	_, ts := newPathGateway(t, func(c *Config) { c.MaxStrikes = 1 }, healthy, dying)
	file := pathFile(16, 2)

	recs, sum := postAnalyzePath(t, ts.URL, pathBody(t, file))
	if sum.OK != 16 || sum.Failed != 0 {
		t.Fatalf("summary %+v", sum)
	}
	// Every (path, stage) exactly once: the re-run of the torn path's
	// stage 0 deduplicates against the pre-death record.
	seen := map[pathnoise.StageKey]int{}
	for _, r := range recs {
		seen[r.Key()]++
	}
	for k, n := range seen {
		if n != 1 {
			t.Fatalf("stage %+v merged %d times", k, n)
		}
	}
	if len(recs) != 16*2 {
		t.Fatalf("merged %d stage records, want %d", len(recs), 16*2)
	}
	if healthy.callCount() < 2 {
		t.Fatal("survivor never received the reshard")
	}
}

// TestGatewayPathCanceledNeverFinalizes: a replica that cuts a path off
// as canceled (drain) must not finalize it — the reshard completes it.
func TestGatewayPathCanceledNeverFinalizes(t *testing.T) {
	var mu sync.Mutex
	drained := 0
	f := newFakePathReplica(t)
	f.behave = func(n int, w http.ResponseWriter, r *http.Request, file workload.FileJSON) bool {
		mu.Lock()
		first := drained == 0
		drained++
		mu.Unlock()
		if first {
			// Cut off every path in this shard, drain-style.
			skip := map[string]bool{}
			for _, p := range file.Paths {
				skip[p.Name] = true
			}
			servePathsAll(w, file, skip)
			return true
		}
		return false
	}
	_, ts := newPathGateway(t, nil, f)
	file := pathFile(3, 2)

	recs, sum := postAnalyzePath(t, ts.URL, pathBody(t, file))
	if sum.OK != 3 || sum.Canceled != 0 || sum.Failed != 0 {
		t.Fatalf("summary %+v", sum)
	}
	if len(recs) != 3*2 {
		t.Fatalf("merged %d stage records, want %d", len(recs), 3*2)
	}
	if f.callCount() < 2 {
		t.Fatal("canceled paths were never retried")
	}
}

// TestGatewayPathSubRequestIDs: path shards derive "-p" journal IDs
// from the client's request_id, disjoint from the net dispatcher's "-s"
// family.
func TestGatewayPathSubRequestIDs(t *testing.T) {
	f := newFakePathReplica(t)
	_, ts := newPathGateway(t, nil, f)
	file := pathFile(2, 2)

	resp, err := http.Post(ts.URL+"/v1/analyze-path?request_id=job7", "application/json",
		bytes.NewReader(pathBody(t, file)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.askedIDs) == 0 {
		t.Fatal("no sub-requests")
	}
	for _, id := range f.askedIDs {
		if !noised.ValidRequestID(id) || len(id) != len("job7-p")+8 || id[:6] != "job7-p" {
			t.Fatalf("sub-request id %q not in the job7-p%%08x family", id)
		}
	}
}

// TestGatewayPathValidation covers the structural 400s the gateway
// enforces without a device library.
func TestGatewayPathValidation(t *testing.T) {
	f := newFakePathReplica(t)
	_, ts := newPathGateway(t, nil, f)

	noPaths := pathFile(1, 2)
	noPaths.Paths = nil
	unknownStage := pathFile(1, 2)
	unknownStage.Paths[0].Stages = append(unknownStage.Paths[0].Stages, "ghost")
	dupPath := pathFile(2, 2)
	dupPath.Paths[1].Name = dupPath.Paths[0].Name

	for name, file := range map[string]workload.FileJSON{
		"no paths":      noPaths,
		"unknown stage": unknownStage,
		"dup path name": dupPath,
	} {
		resp, err := http.Post(ts.URL+"/v1/analyze-path", "application/json",
			bytes.NewReader(pathBody(t, file)))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
	if f.callCount() != 0 {
		t.Fatal("invalid requests reached a replica")
	}
}

// TestShardPathsPinsWholePaths: the shard function itself — every path
// maps to exactly one replica and the assignment is deterministic.
func TestShardPathsPinsWholePaths(t *testing.T) {
	file := pathFile(50, 3)
	names := []string{"a", "b", "c"}
	got := shardPaths(file.Paths, names)
	total := 0
	for _, shard := range got {
		total += len(shard)
	}
	if total != 50 {
		t.Fatalf("%d paths sharded, want 50", total)
	}
	again := shardPaths(file.Paths, []string{"c", "a", "b"})
	for name, shard := range got {
		seen := map[string]bool{}
		for _, p := range again[name] {
			seen[p.Name] = true
		}
		for _, p := range shard {
			if !seen[p.Name] {
				t.Fatalf("path %s moved when the name order changed", p.Name)
			}
		}
	}
}
