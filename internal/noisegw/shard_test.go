package noisegw

import (
	"fmt"
	"testing"

	"repro/internal/workload"
)

func caseFor(name, cell string, slew float64) workload.CaseJSON {
	c := workload.CaseJSON{Name: name}
	c.Victim.Cell = cell
	c.Victim.InputSlew = slew
	return c
}

// TestBucketKey: the bucket is the cache-locality unit — cell crossed
// with a logarithmic slew band — so nets that share a characterization
// table share a bucket, and nets that don't, don't.
func TestBucketKey(t *testing.T) {
	base := caseFor("a", "INVX4", 50e-12)
	sameBand := caseFor("b", "INVX4", 55e-12) // same decade fifth
	if bucketKey(base) != bucketKey(sameBand) {
		t.Fatalf("same cell and slew band split buckets: %q vs %q", bucketKey(base), bucketKey(sameBand))
	}
	otherCell := caseFor("c", "BUFX8", 50e-12)
	if bucketKey(base) == bucketKey(otherCell) {
		t.Fatalf("different cells share bucket %q", bucketKey(base))
	}
	otherBand := caseFor("d", "INVX4", 500e-12) // one decade up
	if bucketKey(base) == bucketKey(otherBand) {
		t.Fatalf("slews a decade apart share bucket %q", bucketKey(base))
	}
	// Degenerate slews must not panic the log and must stay stable.
	zero := caseFor("e", "INVX4", 0)
	neg := caseFor("f", "INVX4", -1)
	if bucketKey(zero) != bucketKey(neg) {
		t.Fatalf("degenerate slews disagree: %q vs %q", bucketKey(zero), bucketKey(neg))
	}
}

// TestRingBalance: with virtual nodes, a three-replica ring spreads
// many distinct buckets roughly evenly — no replica takes more than
// twice its fair share.
func TestRingBalance(t *testing.T) {
	names := []string{"http://a:9001", "http://b:9001", "http://c:9001"}
	r := newRing(names)
	counts := map[string]int{}
	const buckets = 3000
	for i := 0; i < buckets; i++ {
		counts[r.owner(fmt.Sprintf("CELL%d/%d", i%97, i%13))]++
	}
	fair := buckets / len(names)
	for _, n := range names {
		if counts[n] == 0 {
			t.Fatalf("replica %s owns no buckets: %v", n, counts)
		}
		if counts[n] > 2*fair {
			t.Fatalf("replica %s owns %d of %d buckets (fair %d): %v", n, counts[n], buckets, fair, counts)
		}
	}
}

// TestRingStability is the consistent-hashing contract: removing one
// replica moves only the buckets it owned; every other assignment is
// untouched, so surviving replicas keep their warm caches.
func TestRingStability(t *testing.T) {
	full := newRing([]string{"a", "b", "c"})
	reduced := newRing([]string{"a", "b"})
	for i := 0; i < 2000; i++ {
		bucket := fmt.Sprintf("CELL%d/%d", i, i%11)
		before := full.owner(bucket)
		after := reduced.owner(bucket)
		if before != "c" && after != before {
			t.Fatalf("bucket %s moved %s -> %s though its owner survived", bucket, before, after)
		}
		if before == "c" && after != "a" && after != "b" {
			t.Fatalf("bucket %s orphaned to %q", bucket, after)
		}
	}
}

// TestRingDeterminism: the ring is a pure function of the name set —
// order of configuration must not matter.
func TestRingDeterminism(t *testing.T) {
	r1 := newRing([]string{"a", "b", "c"})
	r2 := newRing([]string{"c", "a", "b"})
	for i := 0; i < 500; i++ {
		bucket := fmt.Sprintf("CELL%d/3", i)
		if r1.owner(bucket) != r2.owner(bucket) {
			t.Fatalf("bucket %s owner depends on configuration order", bucket)
		}
	}
}

// TestShardCases: every case lands on exactly one replica, same-bucket
// cases stay together, and input order is preserved within each shard
// (the replicas stream in the order they receive).
func TestShardCases(t *testing.T) {
	var cases []workload.CaseJSON
	for i := 0; i < 60; i++ {
		cases = append(cases, caseFor(fmt.Sprintf("net%02d", i), fmt.Sprintf("CELL%d", i%7), 50e-12))
	}
	names := []string{"a", "b", "c"}
	shards := shardCases(cases, names)
	total := 0
	seen := map[string]string{}
	for replica, shard := range shards {
		total += len(shard)
		last := -1
		for _, c := range shard {
			if prev, dup := seen[c.Name]; dup {
				t.Fatalf("net %s on both %s and %s", c.Name, prev, replica)
			}
			seen[c.Name] = replica
			var idx int
			fmt.Sscanf(c.Name, "net%d", &idx)
			if idx <= last {
				t.Fatalf("shard %s out of input order: net%02d after net%02d", replica, idx, last)
			}
			last = idx
		}
	}
	if total != len(cases) {
		t.Fatalf("sharded %d of %d cases", total, len(cases))
	}
	// Same bucket -> same replica.
	byBucket := map[string]string{}
	for _, c := range cases {
		b := bucketKey(c)
		if prev, ok := byBucket[b]; ok && prev != seen[c.Name] {
			t.Fatalf("bucket %s split across %s and %s", b, prev, seen[c.Name])
		}
		byBucket[b] = seen[c.Name]
	}
}
