package noisegw

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"

	"repro/internal/metrics"
)

// The gateway's load gate is the same shape as noised's: a semaphore of
// coordination slots fronted by a bounded wait queue, with live state
// in the gw.inflight and gw.queue_depth gauges. Shedding here is what
// completes the end-to-end backpressure story — replica sheds slow the
// gateway's sub-requests, and the gateway's own gate sheds its clients
// rather than queueing unboundedly on a saturated fleet.

// errQueueFull is returned by acquire when the wait queue is at
// capacity; the handler maps it to 503 + Retry-After.
var errQueueFull = errors.New("noisegw: admission queue full")

// errDraining is returned by acquire once the gateway has begun its
// graceful drain.
var errDraining = errors.New("noisegw: gateway draining")

type admission struct {
	slots    chan struct{}
	mu       sync.Mutex
	queued   int
	maxQueue int
	drained  atomic.Bool

	inflight   *metrics.Gauge
	queueDepth *metrics.Gauge
}

func newAdmission(maxInflight, maxQueue int, reg *metrics.Registry) *admission {
	return &admission{
		slots:      make(chan struct{}, maxInflight),
		maxQueue:   maxQueue,
		inflight:   reg.Gauge(mGwInflight),
		queueDepth: reg.Gauge(mGwQueueDepth),
	}
}

func (a *admission) drain()         { a.drained.Store(true) }
func (a *admission) draining() bool { return a.drained.Load() }

// acquire claims a coordination slot, waiting in the bounded queue when
// every slot is busy; see noised's admission gate for the contract.
func (a *admission) acquire(ctx context.Context) error {
	if a.draining() {
		return errDraining
	}
	select {
	case a.slots <- struct{}{}:
		a.inflight.Inc()
		return nil
	default:
	}
	a.mu.Lock()
	if a.queued >= a.maxQueue {
		a.mu.Unlock()
		return errQueueFull
	}
	a.queued++
	a.queueDepth.Set(int64(a.queued))
	a.mu.Unlock()
	defer func() {
		a.mu.Lock()
		a.queued--
		a.queueDepth.Set(int64(a.queued))
		a.mu.Unlock()
	}()
	select {
	case a.slots <- struct{}{}:
		a.inflight.Inc()
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (a *admission) release() {
	<-a.slots
	a.inflight.Dec()
}
