package noisegw

// Metric-name constant table (enforced by noiselint/metricflow): the
// gw.* series in one place. Intake mirrors the noised server.* shape
// (accepted work vs. per-class rejections); the shard counters size the
// scatter side (streams opened, shed, torn, stalled); the replica
// counters track the health state machine; gw.reshards and gw.hedges
// count the two recovery moves; the histograms carry tail latency.
const (
	mGwRequests = "gw.requests"

	mGwRejectedQueue      = "gw.rejected.queue"
	mGwRejectedDraining   = "gw.rejected.draining"
	mGwRejectedNoReplicas = "gw.rejected.noreplicas"
	mGwRejectedValidation = "gw.rejected.validation"

	mGwNetsMerged     = "gw.nets.merged"
	mGwNetsUnassigned = "gw.nets.unassigned"
	mGwNetsDuplicate  = "gw.nets.duplicate"

	mGwPathsMerged     = "gw.paths.merged"
	mGwPathsUnassigned = "gw.paths.unassigned"
	mGwStagesMerged    = "gw.stages.merged"
	mGwStagesDuplicate = "gw.stages.duplicate"

	mGwReshards     = "gw.reshards"
	mGwHedges       = "gw.hedges"
	mGwShardStreams = "gw.shard.streams"
	mGwShardShed    = "gw.shard.shed"
	mGwShardTorn    = "gw.shard.torn"
	mGwShardStalled = "gw.shard.stalled"

	mGwReplicaEjections = "gw.replica.ejections"
	mGwReplicaRejoins   = "gw.replica.rejoins"
	mGwReplicaRestarts  = "gw.replica.restarts"

	mGwReplicasHealthy = "gw.replicas_healthy"
	mGwInflight        = "gw.inflight"
	mGwQueueDepth      = "gw.queue_depth"

	mGwShardLatency = "gw.shard.latency"
	mGwNetLatency   = "gw.net.latency"
)
