package noisegw

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/workload"
)

// BenchmarkScatterGather measures the gateway's coordination overhead
// alone: three instant fake replicas, 256 nets per request, NDJSON in
// and out. The replicas cost nothing, so the time is sharding, the
// sub-request fan-out, stream parsing, and the exactly-once merge.
func BenchmarkScatterGather(b *testing.B) {
	replicas := make([]string, 3)
	for i := range replicas {
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/readyz" {
				fmt.Fprintln(w, "ok")
				return
			}
			var file workload.FileJSON
			if err := json.NewDecoder(r.Body).Decode(&file); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			serveAll(w, file, nil)
		}))
		b.Cleanup(ts.Close)
		replicas[i] = ts.URL
	}
	g, err := New(Config{Replicas: replicas, StallTimeout: 30 * time.Second})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(g.Handler())
	b.Cleanup(ts.Close)

	body, err := json.Marshal(workload.FileJSON{Technology: "default-180nm", Cases: testCases(256)})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(ts.URL+"/v1/analyze", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		n, err := io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK || n == 0 {
			b.Fatalf("status %s, %d bytes, err %v", resp.Status, n, err)
		}
	}
	b.ReportMetric(float64(b.N*256)/b.Elapsed().Seconds(), "nets/s")
}
