package colblob

import (
	"bytes"
	"io"
	"math"
	"testing"
)

// Fuzz targets. Each asserts two invariants: (1) decoders never panic
// or over-allocate on hostile bytes, and (2) anything that decodes
// cleanly re-encodes and decodes to the same values (round-trip
// stability). CI runs these with -fuzz for a short budget on every
// push; the seed corpus under testdata/fuzz is committed.

func FuzzReadFloats(f *testing.F) {
	for _, vals := range floatCases {
		f.Add(AppendFloats(nil, vals))
	}
	f.Add([]byte{colDelta2, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		vals, rest, err := ReadFloats(data)
		if err != nil {
			return
		}
		enc := AppendFloats(nil, vals)
		got, rest2, err := ReadFloats(enc)
		if err != nil || len(rest2) != 0 {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !equalBits(vals, got) {
			t.Fatalf("re-encode changed values")
		}
		_ = rest
	})
}

func FuzzFrameReader(f *testing.F) {
	var stream []byte
	stream = AppendFrame(stream, FrameRecord, []byte("seed-record"))
	stream = AppendFrame(stream, FrameSummary, []byte(`{"analyzed":1}`))
	f.Add(stream)
	f.Add(stream[:len(stream)-5])
	f.Add([]byte{FrameMagic, FrameRecord, 0x05, 'a', 'b'})
	f.Fuzz(func(t *testing.T, data []byte) {
		fr := NewFrameReader(bytes.NewReader(data))
		var frames [][]byte
		var kinds []byte
		for {
			kind, payload, err := fr.Next()
			if err != nil {
				if err != io.EOF && err != ErrTorn && !Corrupt(err) {
					t.Fatalf("unexpected error class: %v", err)
				}
				break
			}
			frames = append(frames, bytes.Clone(payload))
			kinds = append(kinds, kind)
		}
		// Whatever decoded must survive a re-framed round trip.
		var re []byte
		for i, p := range frames {
			re = AppendFrame(re, kinds[i], p)
		}
		fr2 := NewFrameReader(bytes.NewReader(re))
		for i := range frames {
			kind, payload, err := fr2.Next()
			if err != nil || kind != kinds[i] || !bytes.Equal(payload, frames[i]) {
				t.Fatalf("re-framed frame %d mismatch: %v", i, err)
			}
		}
	})
}

func FuzzDecodeBlob(f *testing.F) {
	golden, _ := buildTestBlob(f)
	f.Add(golden)
	f.Add(NewBuilder().Encode())
	f.Add(golden[:len(golden)/2])
	f.Fuzz(func(t *testing.T, data []byte) {
		bl, err := Decode(data)
		if err != nil {
			return
		}
		// A decodable blob must be fully traversable and rebuildable.
		b := NewBuilder(bl.MetricNames()...)
		for i := 0; i < bl.Len(); i++ {
			r := bl.At(i)
			if err := b.Add(r); err != nil {
				t.Fatalf("record %d does not re-add: %v", i, err)
			}
		}
		re, err := Decode(b.Encode())
		if err != nil {
			t.Fatalf("re-encoded blob does not decode: %v", err)
		}
		if re.Len() != bl.Len() {
			t.Fatalf("re-encode changed record count")
		}
		for i := 0; i < bl.Len(); i++ {
			a, c := bl.At(i), re.At(i)
			if a.Name != c.Name || a.Quality != c.Quality || a.Class != c.Class ||
				a.Error != c.Error || a.Iters != c.Iters ||
				!equalBits(a.Metrics, c.Metrics) || len(a.Waves) != len(c.Waves) {
				t.Fatalf("record %d changed across re-encode", i)
			}
			for j := range a.Waves {
				if a.Waves[j].Name != c.Waves[j].Name ||
					!equalBits(a.Waves[j].T, c.Waves[j].T) ||
					!equalBits(a.Waves[j].V, c.Waves[j].V) {
					t.Fatalf("record %d wave %d changed across re-encode", i, j)
				}
			}
		}
	})
}

// FuzzFloatValues drives the encoder (not the decoder) with arbitrary
// float bit patterns, checking bit-exact round trips including NaN
// payloads, infinities, and denormals.
func FuzzFloatValues(f *testing.F) {
	f.Add(uint64(0), uint64(1), uint64(math.Float64bits(math.NaN())))
	f.Add(math.Float64bits(1.5), math.Float64bits(-1.5), math.Float64bits(math.Inf(1)))
	f.Fuzz(func(t *testing.T, a, b, c uint64) {
		vals := []float64{
			math.Float64frombits(a), math.Float64frombits(b),
			math.Float64frombits(c), math.Float64frombits(a ^ c),
		}
		got, rest, err := ReadFloats(AppendFloats(nil, vals))
		if err != nil || len(rest) != 0 || !equalBits(vals, got) {
			t.Fatalf("round trip failed: %v", err)
		}
	})
}
