// Package colblob is the compact columnar binary encoding of the
// result/persistence spine: net-report series (per-net metrics as typed
// columns, waveform time/value series as delta- and XOR-encoded float
// columns) packed into a self-contained blob with an id-hash index for
// O(1) record lookup, plus a length-prefixed, checksummed frame codec
// for streaming uses (the binary batch journal and the negotiated
// application/x-noise-colblob variant of the noised result stream).
//
// Design constraints, in order:
//
//  1. Lossless. Every float64 round-trips bit-exactly; the encodings
//     below operate on IEEE-754 bit patterns with integer arithmetic
//     only, so a decoded journal renders byte-identically to the JSONL
//     it replaces.
//  2. Torn-tail tolerant. A killed writer leaves at most one truncated
//     frame; readers detect it (length + checksum) and stop cleanly,
//     mirroring the JSONL journal's torn-line semantics.
//  3. Dependency-free. The module vendors nothing; the hash is a
//     seedless 64-bit FNV-1a (xxHash-style usage: content ids and
//     index buckets, not cryptography).
//
// Sizes: a delay-noise journal record is ~110 bytes here against ~550
// bytes of JSONL (the 11 float64 fields dominate: 8 bytes each instead
// of ~20 digits of decimal text), and uniformly sampled waveforms
// compress to 1-3 bytes per sample under the delta-of-delta column
// encoding, an order of magnitude under raw float64 columns.
package colblob

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Format identity. Version is bumped on any layout change; decoders
// reject versions they do not know instead of guessing.
const (
	// blobMagic opens a columnar blob file.
	blobMagic = "NCB1"
	// BlobVersion is the current blob layout version.
	BlobVersion = 1
)

// Errors shared by the decoders. ErrTorn specifically marks a truncated
// or checksum-corrupt tail — the state a killed writer leaves behind —
// which journal readers treat as a clean end of stream.
var (
	ErrTorn    = errors.New("colblob: torn frame")
	errCorrupt = errors.New("colblob: corrupt blob")
)

// Corrupt reports whether err marks undecodable colblob input (torn
// tails included).
func Corrupt(err error) bool {
	return errors.Is(err, errCorrupt) || errors.Is(err, ErrTorn)
}

const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

// ID returns the 64-bit content id of a record name: seedless FNV-1a
// over the raw bytes. Ids key the blob index; equal names always hash
// equally across processes and versions, so an id computed today finds
// a record written by any future encoder.
func ID(name []byte) uint64 {
	h := fnvOffset
	for _, b := range name {
		h = (h ^ uint64(b)) * fnvPrime
	}
	return h
}

// IDString is ID for callers holding a string (no allocation).
func IDString(name string) uint64 {
	h := fnvOffset
	for i := 0; i < len(name); i++ {
		h = (h ^ uint64(name[i])) * fnvPrime
	}
	return h
}

// checksum32 is the frame/blob integrity check: the low 32 bits of
// FNV-1a over the payload. Catches torn writes and bit rot, not
// adversaries.
func checksum32(data []byte) uint32 {
	h := fnvOffset
	for _, b := range data {
		h = (h ^ uint64(b)) * fnvPrime
	}
	return uint32(h)
}

// --- primitive appenders/readers -------------------------------------
//
// All multi-byte integers are little-endian; counts and lengths are
// unsigned varints. Readers take and return the unconsumed remainder so
// section decoders compose without an offset cursor.

// AppendUvarint appends v as an unsigned varint.
func AppendUvarint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

// ReadUvarint consumes one unsigned varint.
func ReadUvarint(src []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(src)
	if n <= 0 {
		return 0, src, errCorrupt
	}
	return v, src[n:], nil
}

// AppendU64 appends a fixed 8-byte little-endian word.
func AppendU64(dst []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(dst, v)
}

// ReadU64 consumes a fixed 8-byte little-endian word.
func ReadU64(src []byte) (uint64, []byte, error) {
	if len(src) < 8 {
		return 0, src, errCorrupt
	}
	return binary.LittleEndian.Uint64(src), src[8:], nil
}

// AppendString appends a length-prefixed string.
func AppendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// ReadString consumes a length-prefixed string. The returned string is
// a copy; use ReadStringBytes for a zero-copy view.
func ReadString(src []byte) (string, []byte, error) {
	b, rest, err := ReadStringBytes(src)
	return string(b), rest, err
}

// ReadStringBytes consumes a length-prefixed string as a subslice of
// src (no copy).
func ReadStringBytes(src []byte) ([]byte, []byte, error) {
	n, rest, err := ReadUvarint(src)
	if err != nil || n > uint64(len(rest)) {
		return nil, src, errCorrupt
	}
	return rest[:n:n], rest[n:], nil
}

// zigzag maps a signed delta onto an unsigned varint-friendly value
// (small magnitudes of either sign encode short).
func zigzag(v int64) uint64 { return uint64((v << 1) ^ (v >> 63)) }

func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// uvarintLen reports how many bytes AppendUvarint would use for v.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// corruptf wraps errCorrupt with context so decoder failures name the
// section that broke.
func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", errCorrupt, fmt.Sprintf(format, args...))
}
