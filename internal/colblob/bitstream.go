package colblob

// Bit-level packing for sub-byte fields — the journal record codec
// packs 52-bit float mantissas and 4-bit exponent deltas without byte
// padding between them. Bits are packed LSB-first: the first bit
// written lands in bit 0 of the first byte, so streams are
// byte-order-independent and a reader consuming the same widths in the
// same order reproduces the values exactly.

// BitWriter accumulates bit fields into a byte slice.
type BitWriter struct {
	buf   []byte
	acc   uint64
	nbits uint
}

// NewBitWriter starts a bit stream appending to dst (may be nil).
func NewBitWriter(dst []byte) *BitWriter { return &BitWriter{buf: dst} }

// WriteBits appends the low n bits of v (n ≤ 64).
func (w *BitWriter) WriteBits(v uint64, n uint) {
	if n == 0 {
		return
	}
	if n < 64 {
		v &= (1 << n) - 1
	}
	// The accumulator holds < 8 pending bits between calls, so up to 56
	// bits fit in one shift; wider writes split.
	if w.nbits+n > 64 {
		half := 32
		w.WriteBits(v, uint(half))
		w.WriteBits(v>>half, n-uint(half))
		return
	}
	w.acc |= v << w.nbits
	w.nbits += n
	for w.nbits >= 8 {
		w.buf = append(w.buf, byte(w.acc))
		w.acc >>= 8
		w.nbits -= 8
	}
}

// Bytes flushes the final partial byte (zero-padded) and returns the
// accumulated stream.
func (w *BitWriter) Bytes() []byte {
	if w.nbits > 0 {
		w.buf = append(w.buf, byte(w.acc))
		w.acc, w.nbits = 0, 0
	}
	return w.buf
}

// BitReader consumes bit fields written by BitWriter.
type BitReader struct {
	src   []byte
	pos   int
	acc   uint64
	nbits uint
}

// NewBitReader reads a bit stream from src.
func NewBitReader(src []byte) *BitReader { return &BitReader{src: src} }

// ReadBits consumes the next n bits (n ≤ 64); it errors once the
// stream is exhausted.
func (r *BitReader) ReadBits(n uint) (uint64, error) {
	if n == 0 {
		return 0, nil
	}
	if r.nbits+n > 64 && n > 32 {
		lo, err := r.ReadBits(32)
		if err != nil {
			return 0, err
		}
		hi, err := r.ReadBits(n - 32)
		if err != nil {
			return 0, err
		}
		return lo | hi<<32, nil
	}
	for r.nbits < n {
		if r.pos >= len(r.src) {
			return 0, corruptf("bitstream: exhausted")
		}
		r.acc |= uint64(r.src[r.pos]) << r.nbits
		r.pos++
		r.nbits += 8
	}
	v := r.acc
	if n < 64 {
		v &= (1 << n) - 1
	}
	r.acc >>= n
	r.nbits -= n
	return v, nil
}

// Consumed reports how many whole bytes of src the reader has touched
// (the current partial byte counts).
func (r *BitReader) Consumed() int { return r.pos }
