package colblob

import (
	"bufio"
	"encoding/binary"
	"io"
)

// Streaming frame codec. A frame is one self-delimiting, checksummed
// unit of a binary stream — one journal record, one wire record, one
// terminal summary:
//
//	[magic 0xCB] [kind] [uvarint payload length] [payload] [checksum u32]
//
// The magic byte distinguishes a binary journal from a JSONL one on the
// first byte of the file (JSONL lines start with '{'), the length makes
// frames skippable, and the checksum turns the half-written frame a
// killed process leaves behind into a detectable ErrTorn instead of
// garbage records.

// FrameMagic opens every frame. 0xCB ("ColBlob") is outside ASCII, so
// no JSONL journal can start with it.
const FrameMagic byte = 0xCB

// Frame kinds used by the journal and wire codecs. Decoders skip kinds
// they do not know, so new kinds extend the stream compatibly.
const (
	// FrameRecord carries one encoded journal/wire record.
	FrameRecord byte = 0x01
	// FrameSummary carries the terminal stream summary (JSON payload —
	// it occurs once per stream, so compactness does not matter and the
	// summary schema stays shared with the NDJSON wire).
	FrameSummary byte = 0x02
	// FrameHeartbeat is an empty keepalive frame the serving layer
	// interleaves into an idle wire stream so clients (and the gateway's
	// stall detector) can tell a slow net from a dead replica. Decoders
	// that predate it skip it like any unknown kind.
	FrameHeartbeat byte = 0x03
	// FramePathStage carries one path-mode stage record (see
	// internal/pathnoise): scalar fields plus the stage's receiver-output
	// waveform series as float columns. Self-contained — path journals do
	// not chain cross-record state, so a reader can survive any single
	// bad frame.
	FramePathStage byte = 0x04
)

// maxFramePayload bounds a single frame. Records are ~100 bytes; a
// length beyond this is corruption, not data, and refusing it keeps a
// corrupt length byte from forcing a giant allocation.
const maxFramePayload = 1 << 26 // 64 MiB

// AppendFrame appends one framed payload to dst.
func AppendFrame(dst []byte, kind byte, payload []byte) []byte {
	dst = append(dst, FrameMagic, kind)
	dst = binary.AppendUvarint(dst, uint64(len(payload)))
	dst = append(dst, payload...)
	return binary.LittleEndian.AppendUint32(dst, checksum32(payload))
}

// FrameReader decodes a stream of frames, reusing one payload buffer
// across frames. The payload returned by Next is valid until the
// following Next call.
type FrameReader struct {
	r   *bufio.Reader
	buf []byte
}

// NewFrameReader wraps r. An existing *bufio.Reader is used as-is.
func NewFrameReader(r io.Reader) *FrameReader {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReaderSize(r, 64*1024)
	}
	return &FrameReader{r: br}
}

// Next returns the next frame. A clean end of stream returns io.EOF; a
// truncated or checksum-corrupt tail returns ErrTorn (wrapped with
// detail). After either, the reader is exhausted.
func (fr *FrameReader) Next() (kind byte, payload []byte, err error) {
	magic, err := fr.r.ReadByte()
	if err == io.EOF {
		return 0, nil, io.EOF
	}
	if err != nil {
		return 0, nil, err
	}
	if magic != FrameMagic {
		return 0, nil, corruptf("frame: bad magic 0x%02x", magic)
	}
	kind, err = fr.r.ReadByte()
	if err != nil {
		return 0, nil, torn(err)
	}
	n, err := binary.ReadUvarint(fr.r)
	if err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return 0, nil, ErrTorn
		}
		// An overflowing varint is corruption, not truncation.
		return 0, nil, corruptf("frame: length: %v", err)
	}
	if n > maxFramePayload {
		return 0, nil, corruptf("frame: %d-byte payload", n)
	}
	if cap(fr.buf) < int(n) {
		fr.buf = make([]byte, n)
	}
	payload = fr.buf[:n]
	if _, err := io.ReadFull(fr.r, payload); err != nil {
		return 0, nil, torn(err)
	}
	var sum [4]byte
	if _, err := io.ReadFull(fr.r, sum[:]); err != nil {
		return 0, nil, torn(err)
	}
	if binary.LittleEndian.Uint32(sum[:]) != checksum32(payload) {
		return 0, nil, ErrTorn
	}
	return kind, payload, nil
}

// Buffered reports how many read-ahead bytes sit in the reader's
// buffer, unconsumed by frames — callers tracking the byte offset of
// the last intact frame (torn-tail truncation) subtract it from the
// bytes they have fed in.
func (fr *FrameReader) Buffered() int { return fr.r.Buffered() }

// torn maps the io errors of a truncated read onto ErrTorn; anything
// else passes through.
func torn(err error) error {
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return ErrTorn
	}
	return err
}
