package colblob

import (
	"encoding/binary"
	"math/bits"
)

// Columnar blob layout (version 1). Everything after the 5-byte header
// is a sequence of sections in fixed order; the trailing checksum
// covers the whole body so a truncated or bit-rotted file is rejected
// instead of misread:
//
//	"NCB1" version
//	uvarint nRecords, uvarint nMetrics
//	metric names        nMetrics × string
//	record names        nRecords × string
//	quality column      dictionary (uvarint n, n × string) + nRecords × uvarint index
//	class column        same shape
//	error column        nRecords × string (almost always empty → 1 byte)
//	iterations column   nRecords × uvarint
//	metric columns      nMetrics × float column (each nRecords long)
//	waveform section    per record: uvarint nWaves, then per wave
//	                    string name + float column T + float column V
//	index               uvarint tableSize (power of two) + tableSize ×
//	                    (u64 id, uvarint recordIndex+1; 0 = empty slot)
//	checksum            u32 over everything before it
//
// Low-cardinality string columns (quality, class) are dictionary-coded;
// float columns pick the cheapest of the raw/XOR/delta/delta-of-delta
// encodings per column (see floatcol.go). The index is an open-addressed
// hash table over ID(name), sized ≥ 2× the record count, giving O(1)
// expected Lookup straight off the decoded blob.

// Series is one named waveform of a record: time and value columns of
// equal length.
type Series struct {
	Name string
	T, V []float64
}

// Record is one net's row of a blob.
type Record struct {
	Name    string
	Quality string
	Class   string
	Error   string
	Iters   int64
	// Metrics aligns with the blob's metric-name schema, one value per
	// metric column.
	Metrics []float64
	Waves   []Series
}

// Builder accumulates records and encodes them as one blob. Encoding is
// deterministic: the same records in the same order produce identical
// bytes, which the golden-fixture test pins across versions.
type Builder struct {
	metricNames []string
	recs        []Record
}

// NewBuilder starts a blob with the given metric-column schema.
func NewBuilder(metricNames ...string) *Builder {
	return &Builder{metricNames: metricNames}
}

// Add appends one record. Records with the same name may coexist; the
// index resolves Lookup to the last one added.
func (b *Builder) Add(r Record) error {
	if len(r.Metrics) != len(b.metricNames) {
		return corruptf("builder: record %q has %d metrics, schema wants %d",
			r.Name, len(r.Metrics), len(b.metricNames))
	}
	for _, w := range r.Waves {
		if len(w.T) != len(w.V) {
			return corruptf("builder: record %q wave %q: %d times vs %d values",
				r.Name, w.Name, len(w.T), len(w.V))
		}
	}
	b.recs = append(b.recs, r)
	return nil
}

// Len reports the records added so far.
func (b *Builder) Len() int { return len(b.recs) }

// Encode serializes the blob.
func (b *Builder) Encode() []byte {
	dst := append([]byte(blobMagic), BlobVersion)
	body := len(dst)
	dst = binary.AppendUvarint(dst, uint64(len(b.recs)))
	dst = binary.AppendUvarint(dst, uint64(len(b.metricNames)))
	for _, m := range b.metricNames {
		dst = AppendString(dst, m)
	}
	for i := range b.recs {
		dst = AppendString(dst, b.recs[i].Name)
	}
	dst = appendDictColumn(dst, b.recs, func(r *Record) string { return r.Quality })
	dst = appendDictColumn(dst, b.recs, func(r *Record) string { return r.Class })
	for i := range b.recs {
		dst = AppendString(dst, b.recs[i].Error)
	}
	for i := range b.recs {
		dst = binary.AppendUvarint(dst, zigzag(b.recs[i].Iters))
	}
	col := make([]float64, 0, len(b.recs))
	for j := range b.metricNames {
		col = col[:0]
		for i := range b.recs {
			col = append(col, b.recs[i].Metrics[j])
		}
		dst = AppendFloats(dst, col)
	}
	for i := range b.recs {
		dst = binary.AppendUvarint(dst, uint64(len(b.recs[i].Waves)))
		for _, w := range b.recs[i].Waves {
			dst = AppendString(dst, w.Name)
			dst = AppendFloats(dst, w.T)
			dst = AppendFloats(dst, w.V)
		}
	}
	dst = appendIndex(dst, b.recs)
	return binary.LittleEndian.AppendUint32(dst, checksum32(dst[body:]))
}

// appendDictColumn dictionary-codes one low-cardinality string column:
// the distinct values in first-appearance order, then one index per
// record.
func appendDictColumn(dst []byte, recs []Record, get func(*Record) string) []byte {
	dict := make(map[string]uint64, 8)
	var values []string
	idx := make([]uint64, len(recs))
	for i := range recs {
		v := get(&recs[i])
		j, ok := dict[v]
		if !ok {
			j = uint64(len(values))
			dict[v] = j
			values = append(values, v)
		}
		idx[i] = j
	}
	dst = binary.AppendUvarint(dst, uint64(len(values)))
	for _, v := range values {
		dst = AppendString(dst, v)
	}
	for _, j := range idx {
		dst = binary.AppendUvarint(dst, j)
	}
	return dst
}

// appendIndex writes the open-addressed id table. Slots hold
// recordIndex+1 so zero means empty; collisions probe linearly. Later
// records override earlier ones with the same name (last wins, the
// journal merge rule).
func appendIndex(dst []byte, recs []Record) []byte {
	size := indexSize(len(recs))
	dst = binary.AppendUvarint(dst, uint64(size))
	ids := make([]uint64, size)
	slots := make([]uint64, size)
	mask := uint64(size - 1)
	for i := range recs {
		id := IDString(recs[i].Name)
		at := id & mask
		for {
			// Overwrite only a true duplicate name (last wins); a mere
			// 64-bit id collision between different names keeps probing
			// so both stay findable.
			if slots[at] == 0 || (ids[at] == id && recs[slots[at]-1].Name == recs[i].Name) {
				ids[at] = id
				slots[at] = uint64(i) + 1
				break
			}
			at = (at + 1) & mask
		}
	}
	for k := 0; k < size; k++ {
		dst = binary.LittleEndian.AppendUint64(dst, ids[k])
		dst = binary.AppendUvarint(dst, slots[k])
	}
	return dst
}

// indexSize picks the table size: the next power of two at or above
// twice the record count (load factor ≤ 0.5), minimum 2.
func indexSize(n int) int {
	if n < 1 {
		n = 1
	}
	return 1 << bits.Len(uint(2*n-1))
}

// Blob is a decoded columnar blob. Decode materializes the columns once
// (strings stay views into the input buffer); iteration afterwards does
// not allocate.
type Blob struct {
	metricNames []string
	names       [][]byte
	quality     dictColumn
	class       dictColumn
	errs        [][]byte
	iters       []int64
	metrics     [][]float64
	waves       [][]Series

	indexIDs   []uint64
	indexSlots []uint32
}

type dictColumn struct {
	values [][]byte
	idx    []uint32
}

func (d *dictColumn) at(i int) []byte { return d.values[d.idx[i]] }

// Decode parses a blob. The Blob keeps string views into data; the
// caller must not mutate it afterwards.
func Decode(data []byte) (*Blob, error) {
	if len(data) < len(blobMagic)+1+4 || string(data[:4]) != blobMagic {
		return nil, corruptf("blob: bad magic")
	}
	if v := data[4]; v != BlobVersion {
		return nil, corruptf("blob: unknown version %d", v)
	}
	body, sum := data[5:len(data)-4], data[len(data)-4:]
	if binary.LittleEndian.Uint32(sum) != checksum32(body) {
		return nil, corruptf("blob: checksum mismatch")
	}
	src := body
	nRec64, src, err := ReadUvarint(src)
	if err != nil {
		return nil, err
	}
	nMet64, src, err := ReadUvarint(src)
	if err != nil {
		return nil, err
	}
	// Every record costs at least ~4 bytes across the mandatory columns;
	// reject counts the body cannot hold before allocating for them.
	if nRec64 > uint64(len(body)) || nMet64 > uint64(len(body)) {
		return nil, corruptf("blob: %d records / %d metrics in %d bytes", nRec64, nMet64, len(body))
	}
	nRec, nMet := int(nRec64), int(nMet64)
	bl := &Blob{
		metricNames: make([]string, nMet),
		names:       make([][]byte, nRec),
		errs:        make([][]byte, nRec),
		iters:       make([]int64, nRec),
		metrics:     make([][]float64, nMet),
		waves:       make([][]Series, nRec),
	}
	for j := range bl.metricNames {
		if bl.metricNames[j], src, err = ReadString(src); err != nil {
			return nil, err
		}
	}
	for i := range bl.names {
		if bl.names[i], src, err = ReadStringBytes(src); err != nil {
			return nil, err
		}
	}
	if bl.quality, src, err = readDictColumn(src, nRec); err != nil {
		return nil, err
	}
	if bl.class, src, err = readDictColumn(src, nRec); err != nil {
		return nil, err
	}
	for i := range bl.errs {
		if bl.errs[i], src, err = ReadStringBytes(src); err != nil {
			return nil, err
		}
	}
	for i := range bl.iters {
		var z uint64
		if z, src, err = ReadUvarint(src); err != nil {
			return nil, err
		}
		bl.iters[i] = unzigzag(z)
	}
	for j := range bl.metrics {
		if bl.metrics[j], src, err = ReadFloats(src); err != nil {
			return nil, err
		}
		if len(bl.metrics[j]) != nRec {
			return nil, corruptf("blob: metric column %d has %d values, want %d", j, len(bl.metrics[j]), nRec)
		}
	}
	for i := 0; i < nRec; i++ {
		var nw uint64
		if nw, src, err = ReadUvarint(src); err != nil {
			return nil, err
		}
		if nw > uint64(len(src)) {
			return nil, corruptf("blob: record %d claims %d waves", i, nw)
		}
		for w := uint64(0); w < nw; w++ {
			var s Series
			if s.Name, src, err = ReadString(src); err != nil {
				return nil, err
			}
			if s.T, src, err = ReadFloats(src); err != nil {
				return nil, err
			}
			if s.V, src, err = ReadFloats(src); err != nil {
				return nil, err
			}
			if len(s.T) != len(s.V) {
				return nil, corruptf("blob: record %d wave %q: %d times vs %d values", i, s.Name, len(s.T), len(s.V))
			}
			bl.waves[i] = append(bl.waves[i], s)
		}
	}
	if src, err = bl.readIndex(src, nRec); err != nil {
		return nil, err
	}
	if len(src) != 0 {
		return nil, corruptf("blob: %d trailing bytes", len(src))
	}
	return bl, nil
}

func readDictColumn(src []byte, nRec int) (dictColumn, []byte, error) {
	var d dictColumn
	nv, src, err := ReadUvarint(src)
	if err != nil || nv > uint64(len(src)) {
		return d, src, corruptf("dict column: value count")
	}
	d.values = make([][]byte, nv)
	for i := range d.values {
		if d.values[i], src, err = ReadStringBytes(src); err != nil {
			return d, src, err
		}
	}
	d.idx = make([]uint32, nRec)
	for i := range d.idx {
		var j uint64
		if j, src, err = ReadUvarint(src); err != nil || j >= nv {
			return d, src, corruptf("dict column: index %d", i)
		}
		d.idx[i] = uint32(j)
	}
	return d, src, nil
}

func (bl *Blob) readIndex(src []byte, nRec int) ([]byte, error) {
	size, src, err := ReadUvarint(src)
	if err != nil || size == 0 || size&(size-1) != 0 || size > uint64(len(src)) {
		return src, corruptf("blob index: bad table size")
	}
	bl.indexIDs = make([]uint64, size)
	bl.indexSlots = make([]uint32, size)
	for k := range bl.indexIDs {
		if bl.indexIDs[k], src, err = ReadU64(src); err != nil {
			return src, corruptf("blob index: id %d", k)
		}
		var slot uint64
		if slot, src, err = ReadUvarint(src); err != nil || slot > uint64(nRec) {
			return src, corruptf("blob index: slot %d", k)
		}
		bl.indexSlots[k] = uint32(slot)
	}
	return src, nil
}

// Len reports the record count.
func (bl *Blob) Len() int { return len(bl.names) }

// MetricNames returns the metric-column schema.
func (bl *Blob) MetricNames() []string { return bl.metricNames }

// Find returns the record index for a net name via the id table —
// O(1) expected — or -1 when absent. Collisions on the 64-bit id are
// resolved by comparing the stored name.
func (bl *Blob) Find(name string) int {
	if len(bl.indexIDs) == 0 {
		return -1
	}
	id := IDString(name)
	mask := uint64(len(bl.indexIDs) - 1)
	for at := id & mask; ; at = (at + 1) & mask {
		slot := bl.indexSlots[at]
		if slot == 0 {
			return -1
		}
		if bl.indexIDs[at] == id {
			if i := int(slot - 1); string(bl.names[i]) == name {
				return i
			}
			// Id collision with a different name: keep probing.
		}
	}
}

// Lookup returns the record for a net name (last one added under that
// name), allocating fresh strings and slices the caller may keep.
func (bl *Blob) Lookup(name string) (Record, bool) {
	i := bl.Find(name)
	if i < 0 {
		return Record{}, false
	}
	return bl.At(i), true
}

// At materializes record i with owned strings and slices.
func (bl *Blob) At(i int) Record {
	r := Record{
		Name:    string(bl.names[i]),
		Quality: string(bl.quality.at(i)),
		Class:   string(bl.class.at(i)),
		Error:   string(bl.errs[i]),
		Iters:   bl.iters[i],
		Waves:   bl.waves[i],
	}
	if len(bl.metrics) > 0 {
		r.Metrics = make([]float64, len(bl.metrics))
		for j := range bl.metrics {
			r.Metrics[j] = bl.metrics[j][i]
		}
	}
	return r
}

// Iter returns a cursor over the records. The accessor methods return
// views into the decoded blob, so a full pass allocates nothing.
func (bl *Blob) Iter() Iter { return Iter{bl: bl, i: -1} }

// Iter is a zero-allocation cursor over a blob's records.
type Iter struct {
	bl *Blob
	i  int
}

// Next advances the cursor; it returns false once the records are
// exhausted.
func (it *Iter) Next() bool {
	it.i++
	return it.i < len(it.bl.names)
}

// Index reports the current record index.
func (it *Iter) Index() int { return it.i }

// Name returns the current record's name as a view (valid while the
// blob lives; copy to keep).
func (it *Iter) Name() []byte { return it.bl.names[it.i] }

// Quality returns the current record's quality label view.
func (it *Iter) Quality() []byte { return it.bl.quality.at(it.i) }

// Class returns the current record's error-class label view.
func (it *Iter) Class() []byte { return it.bl.class.at(it.i) }

// Error returns the current record's error-message view (empty for
// successes).
func (it *Iter) Error() []byte { return it.bl.errs[it.i] }

// Iters returns the current record's iteration count.
func (it *Iter) Iters() int64 { return it.bl.iters[it.i] }

// Metric returns metric column j at the current record.
func (it *Iter) Metric(j int) float64 { return it.bl.metrics[j][it.i] }

// Waves returns the current record's waveform series (shared slices).
func (it *Iter) Waves() []Series { return it.bl.waves[it.i] }
