package colblob

import (
	"bytes"
	"io"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// floatCases covers every encoding's sweet spot plus the bit patterns
// that break naive float arithmetic codecs.
var floatCases = map[string][]float64{
	"empty":       {},
	"single":      {3.25e-12},
	"uniformGrid": grid(0, 1e-12, 512),         // delta2: ~1 byte/sample
	"repeats":     {5, 5, 5, 5, 5, 5, 5, 5, 5}, // xor: 1 byte/sample
	"monotone":    {1, 2, 3, 5, 8, 13, 21, 34}, // delta
	"mixedSigns":  {-1.5, 2.25, -3.75, 0, 4.5}, // raw-ish
	"specials":    {math.NaN(), math.Inf(1), math.Inf(-1), math.Copysign(0, -1), 0, math.MaxFloat64, math.SmallestNonzeroFloat64},
	"wave": func() []float64 {
		v := make([]float64, 300)
		for i := range v {
			v[i] = 0.9 * math.Exp(-float64(i)/60) * math.Sin(float64(i)/9)
		}
		return v
	}(),
}

func grid(t0, dt float64, n int) []float64 {
	g := make([]float64, n)
	for i := range g {
		g[i] = t0 + float64(i)*dt
	}
	return g
}

// equalBits compares float slices bit-exactly (NaN == NaN).
func equalBits(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

func TestFloatColumnRoundTrip(t *testing.T) {
	for name, vals := range floatCases {
		t.Run(name, func(t *testing.T) {
			enc := AppendFloats(nil, vals)
			got, rest, err := ReadFloats(enc)
			if err != nil {
				t.Fatal(err)
			}
			if len(rest) != 0 {
				t.Fatalf("%d unconsumed bytes", len(rest))
			}
			if !equalBits(vals, got) {
				t.Fatalf("round trip mismatch:\n in  %v\n out %v", vals, got)
			}
		})
	}
}

// TestFloatColumnEveryEncodingRoundTrips forces each encoding onto each
// case, so the non-winning decoders stay correct too.
func TestFloatColumnEveryEncodingRoundTrips(t *testing.T) {
	for name, vals := range floatCases {
		for enc := colRaw; enc <= colDelta2; enc++ {
			buf := forceEncode(enc, vals)
			got, rest, err := ReadFloats(buf)
			if err != nil {
				t.Fatalf("%s enc %d: %v", name, enc, err)
			}
			if len(rest) != 0 || !equalBits(vals, got) {
				t.Fatalf("%s enc %d: round trip mismatch", name, enc)
			}
		}
	}
}

// forceEncode re-runs the column writer with a pinned encoding.
func forceEncode(enc byte, vals []float64) []byte {
	dst := []byte{enc}
	dst = AppendUvarint(dst, uint64(len(vals)))
	var prevBits, prevDelta uint64
	for _, v := range vals {
		bits := math.Float64bits(v)
		switch enc {
		case colRaw:
			dst = AppendU64(dst, bits)
		case colXOR:
			dst = AppendUvarint(dst, bits^prevBits)
		case colDelta:
			dst = AppendUvarint(dst, zigzag(int64(bits-prevBits)))
		case colDelta2:
			delta := bits - prevBits
			dst = AppendUvarint(dst, zigzag(int64(delta-prevDelta)))
			prevDelta = delta
		}
		prevBits = bits
	}
	return dst
}

func TestFloatColumnCompression(t *testing.T) {
	vals := grid(0, 2e-12, 1000)
	enc := AppendFloats(nil, vals)
	if raw := 8 * len(vals); len(enc)*4 > raw {
		t.Fatalf("uniform grid encoded to %d bytes; want < 1/4 of raw %d", len(enc), raw)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf []byte
	payloads := [][]byte{[]byte("alpha"), {}, bytes.Repeat([]byte{0xCB}, 300)}
	for i, p := range payloads {
		buf = AppendFrame(buf, byte(i+1), p)
	}
	fr := NewFrameReader(bytes.NewReader(buf))
	for i, p := range payloads {
		kind, got, err := fr.Next()
		if err != nil {
			t.Fatal(err)
		}
		if kind != byte(i+1) || !bytes.Equal(got, p) {
			t.Fatalf("frame %d: kind %d payload %q", i, kind, got)
		}
	}
	if _, _, err := fr.Next(); err != io.EOF {
		t.Fatalf("want io.EOF at end, got %v", err)
	}
}

// TestFrameTornTail truncates a two-frame stream at every length: the
// first frame must always decode intact, and the damaged remainder must
// come back as ErrTorn or EOF — never as a record.
func TestFrameTornTail(t *testing.T) {
	var buf []byte
	buf = AppendFrame(buf, FrameRecord, []byte("complete-record"))
	whole := len(buf)
	buf = AppendFrame(buf, FrameRecord, []byte("torn-record"))
	for cut := whole; cut < len(buf); cut++ {
		fr := NewFrameReader(bytes.NewReader(buf[:cut]))
		kind, payload, err := fr.Next()
		if err != nil || kind != FrameRecord || string(payload) != "complete-record" {
			t.Fatalf("cut %d: first frame broke: %v", cut, err)
		}
		_, _, err = fr.Next()
		if cut == whole {
			if err != io.EOF {
				t.Fatalf("cut %d: want EOF, got %v", cut, err)
			}
			continue
		}
		if err != ErrTorn && !Corrupt(err) {
			t.Fatalf("cut %d: want torn, got %v", cut, err)
		}
	}
}

// TestFrameCorruptPayload flips one payload byte: the checksum must
// catch it.
func TestFrameCorruptPayload(t *testing.T) {
	buf := AppendFrame(nil, FrameRecord, []byte("payload-bytes"))
	buf[5] ^= 0x40
	if _, _, err := NewFrameReader(bytes.NewReader(buf)).Next(); err != ErrTorn {
		t.Fatalf("want ErrTorn on corrupt payload, got %v", err)
	}
}

func testRecords() (metrics []string, recs []Record) {
	metrics = []string{"delayNoise", "pulseHeight", "victimRth"}
	recs = []Record{
		{
			Name: "net0001", Quality: "exact", Class: "", Error: "",
			Iters: 4, Metrics: []float64{12.5e-12, 0.41, 350},
			Waves: []Series{{Name: "composite", T: grid(0, 1e-12, 64), V: grid(0.5, -0.001, 64)}},
		},
		{
			Name: "net0002", Quality: "rescued", Class: "", Error: "",
			Iters: 9, Metrics: []float64{9.75e-12, 0.38, 410},
		},
		{
			Name: "net0003", Quality: "", Class: "convergence",
			Error: "nlsim: newton stalled", Iters: 0, Metrics: []float64{0, 0, 0},
		},
	}
	return
}

func buildTestBlob(t testing.TB) ([]byte, []Record) {
	t.Helper()
	metrics, recs := testRecords()
	b := NewBuilder(metrics...)
	for _, r := range recs {
		if err := b.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	return b.Encode(), recs
}

func TestBlobRoundTrip(t *testing.T) {
	data, recs := buildTestBlob(t)
	bl, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if bl.Len() != len(recs) {
		t.Fatalf("Len = %d, want %d", bl.Len(), len(recs))
	}
	if !reflect.DeepEqual(bl.MetricNames(), []string{"delayNoise", "pulseHeight", "victimRth"}) {
		t.Fatalf("metric names %v", bl.MetricNames())
	}
	for i, want := range recs {
		got := bl.At(i)
		if !reflect.DeepEqual(got, normalize(want)) {
			t.Fatalf("record %d:\n got  %+v\n want %+v", i, got, want)
		}
		byName, ok := bl.Lookup(want.Name)
		if !ok || !reflect.DeepEqual(byName, got) {
			t.Fatalf("Lookup(%q) mismatch", want.Name)
		}
	}
	if _, ok := bl.Lookup("no-such-net"); ok {
		t.Fatal("Lookup invented a record")
	}
	if i := bl.Find("no-such-net"); i != -1 {
		t.Fatalf("Find = %d for absent name", i)
	}
}

// normalize maps a builder-input record onto its decoded shape (nil wave
// slices stay nil).
func normalize(r Record) Record { return r }

func TestBlobDuplicateNameLastWins(t *testing.T) {
	b := NewBuilder("m")
	for i, v := range []float64{1, 2, 3} {
		_ = i
		if err := b.Add(Record{Name: "dup", Metrics: []float64{v}}); err != nil {
			t.Fatal(err)
		}
	}
	bl, err := Decode(b.Encode())
	if err != nil {
		t.Fatal(err)
	}
	r, ok := bl.Lookup("dup")
	if !ok || r.Metrics[0] != 3 {
		t.Fatalf("Lookup(dup) = %+v, %v; want last record", r, ok)
	}
}

func TestBlobEmpty(t *testing.T) {
	bl, err := Decode(NewBuilder().Encode())
	if err != nil {
		t.Fatal(err)
	}
	if bl.Len() != 0 {
		t.Fatalf("Len = %d", bl.Len())
	}
	it := bl.Iter()
	if it.Next() {
		t.Fatal("iterator over empty blob advanced")
	}
}

func TestBlobSchemaMismatch(t *testing.T) {
	b := NewBuilder("a", "b")
	if err := b.Add(Record{Name: "x", Metrics: []float64{1}}); err == nil {
		t.Fatal("Add accepted a metric-arity mismatch")
	}
	if err := b.Add(Record{Name: "x", Metrics: []float64{1, 2},
		Waves: []Series{{Name: "w", T: []float64{0, 1}, V: []float64{0}}}}); err == nil {
		t.Fatal("Add accepted a ragged wave")
	}
}

func TestBlobRejectsCorruption(t *testing.T) {
	data, _ := buildTestBlob(t)
	if _, err := Decode(data[:len(data)-3]); err == nil {
		t.Fatal("truncated blob decoded")
	}
	for _, at := range []int{0, 4, 6, len(data) / 2, len(data) - 2} {
		bad := bytes.Clone(data)
		bad[at] ^= 0x10
		if _, err := Decode(bad); err == nil {
			t.Fatalf("bit flip at %d decoded", at)
		}
	}
}

// TestBlobIterZeroAlloc pins the zero-allocation iteration guarantee: a
// full pass over a decoded blob, touching every column, allocates
// nothing.
func TestBlobIterZeroAlloc(t *testing.T) {
	data, _ := buildTestBlob(t)
	bl, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	var sink float64
	var names int
	allocs := testing.AllocsPerRun(100, func() {
		for it := bl.Iter(); it.Next(); {
			names += len(it.Name()) + len(it.Quality()) + len(it.Class()) + len(it.Error())
			sink += float64(it.Iters())
			for j := 0; j < len(bl.MetricNames()); j++ {
				sink += it.Metric(j)
			}
			for _, w := range it.Waves() {
				sink += w.T[0] + w.V[len(w.V)-1]
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("iteration allocated %.1f times per pass", allocs)
	}
	_ = sink
}

func TestIDStableAndConsistent(t *testing.T) {
	// The id function is part of the on-disk format: pin a known vector
	// so it can never drift silently.
	if got := IDString("net0001"); got != ID([]byte("net0001")) {
		t.Fatal("IDString and ID disagree")
	}
	const want = uint64(0xc927c7c9db4d8b2b)
	if got := IDString("clarinet"); got != want {
		t.Fatalf("IDString(clarinet) = %#x, want %#x (format-breaking change!)", got, want)
	}
}

// TestGoldenBlob is the cross-version decode fixture: the committed
// blob must decode to exactly these records, and the current encoder
// must reproduce it byte-identically, in every future PR. Regenerate
// (only on a deliberate, version-bumped format change) with
// COLBLOB_WRITE_GOLDEN=1 go test ./internal/colblob -run TestGoldenBlob
func TestGoldenBlob(t *testing.T) {
	path := filepath.Join("testdata", "golden_v1.blob")
	data, recs := buildTestBlob(t)
	if os.Getenv("COLBLOB_WRITE_GOLDEN") != "" {
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	golden, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(golden, data) {
		t.Fatalf("encoder no longer reproduces the golden blob (%d vs %d bytes); "+
			"a format change must bump BlobVersion and add a new fixture", len(data), len(golden))
	}
	bl, err := Decode(golden)
	if err != nil {
		t.Fatalf("golden blob no longer decodes: %v", err)
	}
	for i, want := range recs {
		if got := bl.At(i); !reflect.DeepEqual(got, want) {
			t.Fatalf("golden record %d drifted:\n got  %+v\n want %+v", i, got, want)
		}
	}
}
