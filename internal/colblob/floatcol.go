package colblob

import (
	"encoding/binary"
	"math"
)

// Float64 column encodings. A column is a header byte naming the
// encoding, a uvarint count, and the per-value payload. Every encoding
// operates on IEEE-754 bit patterns with integer arithmetic only, so
// decoding is bit-exact for every input, NaN payloads and negative
// zeros included. The encoder sizes all four candidates and keeps the
// smallest:
//
//	colRaw    fixed 8-byte words — the fallback, never beaten by more
//	          than the varint overhead on incompressible data.
//	colXOR    uvarint of bits[i] XOR bits[i-1] — strong when consecutive
//	          values share sign/exponent/high-mantissa bits and differ
//	          only in low bits (slowly varying series, repeated values
//	          collapse to one byte).
//	colDelta  zigzag varint of bits[i] - bits[i-1] as integers — strong
//	          for monotone series, because IEEE-754 orders same-sign
//	          floats by bit pattern (adjacent floats are adjacent
//	          integers).
//	colDelta2 zigzag varint of the second difference of the bit
//	          patterns — uniformly sampled waveform time axes (and any
//	          arithmetic-progression-like series) collapse to ~1 byte
//	          per sample.
const (
	colRaw byte = iota
	colXOR
	colDelta
	colDelta2
)

// AppendFloats appends vals as an encoded column, choosing the
// smallest of the candidate encodings.
func AppendFloats(dst []byte, vals []float64) []byte {
	enc := chooseFloatEncoding(vals)
	dst = append(dst, enc)
	dst = binary.AppendUvarint(dst, uint64(len(vals)))
	var prevBits, prevDelta uint64
	for _, v := range vals {
		bits := math.Float64bits(v)
		switch enc {
		case colRaw:
			dst = binary.LittleEndian.AppendUint64(dst, bits)
		case colXOR:
			dst = binary.AppendUvarint(dst, bits^prevBits)
		case colDelta:
			dst = binary.AppendUvarint(dst, zigzag(int64(bits-prevBits)))
		case colDelta2:
			delta := bits - prevBits
			dst = binary.AppendUvarint(dst, zigzag(int64(delta-prevDelta)))
			prevDelta = delta
		}
		prevBits = bits
	}
	return dst
}

// chooseFloatEncoding sizes every candidate and returns the cheapest,
// preferring the simpler encoding on ties (raw < xor < delta < delta2).
func chooseFloatEncoding(vals []float64) byte {
	sizes := [4]int{8 * len(vals), 0, 0, 0}
	var prevBits, prevDelta uint64
	for _, v := range vals {
		bits := math.Float64bits(v)
		sizes[colXOR] += uvarintLen(bits ^ prevBits)
		delta := bits - prevBits
		sizes[colDelta] += uvarintLen(zigzag(int64(delta)))
		sizes[colDelta2] += uvarintLen(zigzag(int64(delta - prevDelta)))
		prevDelta = delta
		prevBits = bits
	}
	best := colRaw
	for enc := colXOR; enc <= colDelta2; enc++ {
		if sizes[enc] < sizes[best] {
			best = enc
		}
	}
	return best
}

// ReadFloats consumes one encoded column, returning the decoded values
// and the unconsumed remainder.
func ReadFloats(src []byte) ([]float64, []byte, error) {
	return ReadFloatsInto(nil, src)
}

// ReadFloatsInto is ReadFloats appending into dst (reusing its capacity
// when possible), for decoders that iterate many columns without
// re-allocating.
func ReadFloatsInto(dst []float64, src []byte) ([]float64, []byte, error) {
	if len(src) < 1 {
		return nil, src, corruptf("float column: missing header")
	}
	enc := src[0]
	if enc > colDelta2 {
		return nil, src, corruptf("float column: unknown encoding %d", enc)
	}
	n, rest, err := ReadUvarint(src[1:])
	if err != nil {
		return nil, src, corruptf("float column: count")
	}
	// A value costs at least one byte in every varint encoding and 8 in
	// raw, so the count itself bounds-checks against the remainder and a
	// hostile count cannot force a huge allocation.
	min := n
	if enc == colRaw {
		min = 8 * n
	}
	if min > uint64(len(rest)) {
		return nil, src, corruptf("float column: %d values in %d bytes", n, len(rest))
	}
	if cap(dst) < int(n) {
		dst = make([]float64, 0, n)
	}
	dst = dst[:0]
	var prevBits, prevDelta uint64
	for i := uint64(0); i < n; i++ {
		var bits uint64
		switch enc {
		case colRaw:
			bits, rest, err = ReadU64(rest)
		case colXOR:
			var x uint64
			x, rest, err = ReadUvarint(rest)
			bits = x ^ prevBits
		case colDelta:
			var z uint64
			z, rest, err = ReadUvarint(rest)
			bits = prevBits + uint64(unzigzag(z))
		case colDelta2:
			var z uint64
			z, rest, err = ReadUvarint(rest)
			prevDelta += uint64(unzigzag(z))
			bits = prevBits + prevDelta
		}
		if err != nil {
			return nil, src, corruptf("float column: value %d", i)
		}
		prevBits = bits
		dst = append(dst, math.Float64frombits(bits))
	}
	return dst, rest, nil
}
