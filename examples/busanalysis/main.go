// Bus analysis: an 8-bit parallel bus where every wire is a victim of
// its immediate neighbors — the workload class that motivated coupled
// delay-noise analysis. Each bit is analyzed in turn with its two
// neighbors (one for the edge bits) as aggressors, and the report shows
// how the middle bits suffer the most delay noise.
package main

import (
	"fmt"
	"log"

	"repro/internal/clarinet"
	"repro/internal/delaynoise"
	"repro/internal/device"
	"repro/internal/rcnet"
)

const (
	busBits   = 8
	lineR     = 450.0  // ohm per wire
	lineC     = 45e-15 // F ground capacitance per wire
	couplingC = 30e-15 // F to each neighbor
	segments  = 5
)

func main() {
	log.SetFlags(0)
	tech := device.Default180()
	lib := device.NewLibrary(tech)
	cell := func(name string) *device.Cell {
		c, err := lib.Cell(name)
		if err != nil {
			log.Fatal(err)
		}
		return c
	}

	names := make([]string, 0, busBits)
	cases := make([]*delaynoise.Case, 0, busBits)
	for bit := 0; bit < busBits; bit++ {
		spec := rcnet.CoupledSpec{
			Victim: rcnet.LineSpec{
				Name: fmt.Sprintf("b%d", bit), Segments: segments,
				RTotal: lineR, CGround: lineC,
			},
		}
		var aggs []delaynoise.DriverSpec
		for _, nb := range []int{bit - 1, bit + 1} {
			if nb < 0 || nb >= busBits {
				continue
			}
			spec.Aggressors = append(spec.Aggressors, rcnet.AggressorSpec{
				Line: rcnet.LineSpec{
					Name: fmt.Sprintf("b%dn%d", bit, nb), Segments: segments,
					RTotal: lineR, CGround: lineC,
				},
				CCouple: couplingC, From: 0, To: 1,
			})
			aggs = append(aggs, delaynoise.DriverSpec{
				Cell: cell("INVX8"), InputSlew: 80e-12,
				OutputRising: false, InputStart: 400e-12,
			})
		}
		cases = append(cases, &delaynoise.Case{
			Net: rcnet.Build(spec),
			Victim: delaynoise.DriverSpec{
				Cell: cell("INVX2"), InputSlew: 350e-12,
				OutputRising: true, InputStart: 200e-12,
			},
			Aggressors:   aggs,
			Receiver:     cell("INVX2"),
			ReceiverLoad: 12e-15,
		})
		names = append(names, fmt.Sprintf("bus[%d]", bit))
	}

	tool := clarinet.MustNew(lib, clarinet.Config{
		Hold:  delaynoise.HoldTransient,
		Align: delaynoise.AlignExhaustive,
	})
	reports := tool.AnalyzeAll(names, cases)

	fmt.Println("8-bit bus, victim-by-victim worst-case delay noise:")
	fmt.Printf("%-8s %-6s %-12s %-12s %-10s\n", "bit", "aggrs", "quiet(ps)", "noise(ps)", "pulse(V)")
	for i, r := range reports {
		if r.Err != nil {
			log.Fatalf("%s: %v", r.Name, r.Err)
		}
		fmt.Printf("%-8s %-6d %-12.2f %-12.2f %-10.3f\n",
			r.Name, len(cases[i].Aggressors),
			r.Res.QuietCombinedDelay*1e12, r.Res.DelayNoise*1e12, r.Res.Pulse.Height)
	}
	fmt.Println("\nmiddle bits see two aggressors and roughly twice the composite pulse of the edge bits.")
}
