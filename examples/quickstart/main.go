// Quickstart: analyze the delay noise of one victim net with two
// aggressors, comparing the traditional Thevenin holding resistance
// against the paper's transient holding resistance, and validating both
// against a full nonlinear simulation.
package main

import (
	"fmt"
	"log"

	"repro/internal/delaynoise"
	"repro/internal/device"
	"repro/internal/rcnet"
)

func main() {
	log.SetFlags(0)

	// 1. Technology and cell library (generic 0.18um-class, Vdd = 1.8 V).
	tech := device.Default180()
	lib := device.NewLibrary(tech)
	cell := func(name string) *device.Cell {
		c, err := lib.Cell(name)
		if err != nil {
			log.Fatal(err)
		}
		return c
	}

	// 2. Coupled interconnect: a victim line crossed by two aggressors
	//    (the structure of the paper's Figure 1(a)).
	net := rcnet.Build(rcnet.CoupledSpec{
		Victim: rcnet.LineSpec{Name: "v", Segments: 6, RTotal: 400, CGround: 40e-15},
		Aggressors: []rcnet.AggressorSpec{
			{Line: rcnet.LineSpec{Name: "a0", Segments: 6, RTotal: 300, CGround: 30e-15},
				CCouple: 25e-15, From: 0, To: 1},
			{Line: rcnet.LineSpec{Name: "a1", Segments: 6, RTotal: 350, CGround: 35e-15},
				CCouple: 18e-15, From: 0.4, To: 1},
		},
	})

	// 3. Drivers and receiver: a moderate victim driver with a slow edge,
	//    strong fast aggressors switching the opposite way.
	c := &delaynoise.Case{
		Net: net,
		Victim: delaynoise.DriverSpec{
			Cell: cell("INVX2"), InputSlew: 400e-12,
			OutputRising: true, InputStart: 200e-12,
		},
		Aggressors: []delaynoise.DriverSpec{
			{Cell: cell("INVX8"), InputSlew: 80e-12, OutputRising: false, InputStart: 450e-12},
			{Cell: cell("INVX16"), InputSlew: 60e-12, OutputRising: false, InputStart: 520e-12},
		},
		Receiver:     cell("INVX2"),
		ReceiverLoad: 15e-15,
	}

	// 4. Run the analysis with both holding models.
	for _, hold := range []delaynoise.HoldModel{delaynoise.HoldThevenin, delaynoise.HoldTransient} {
		res, err := delaynoise.Analyze(c, delaynoise.Options{
			Hold:  hold,
			Align: delaynoise.AlignExhaustive,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s hold: Rhold %6.0f ohm  pulse %.3f V / %.0f ps  delay noise %6.2f ps (quiet delay %.2f ps)\n",
			hold, res.VictimRtr, res.Pulse.Height, res.Pulse.Width*1e12,
			res.DelayNoise*1e12, res.QuietCombinedDelay*1e12)

		// 5. Validate against the full nonlinear circuit at the same
		//    aggressor alignment.
		shifts := delaynoise.PeakShifts(res.NoisePeakTimes, res.TPeak)
		golden, err := delaynoise.GoldenAtShifts(c, shifts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s       nonlinear reference at the same alignment: %6.2f ps\n",
			"", golden.DelayNoise*1e12)
	}
}
