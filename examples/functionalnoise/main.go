// Functional noise: the sibling analysis to delay noise — a *quiet*
// victim attacked by switching neighbors. The example sweeps the
// coupling strength until the injected glitch defeats the receiver's
// noise-rejection curve, and prints both the per-net verdicts and the
// receiver's immunity boundary.
package main

import (
	"fmt"
	"log"

	"repro/internal/delaynoise"
	"repro/internal/device"
	"repro/internal/funcnoise"
	"repro/internal/rcnet"
)

func main() {
	log.SetFlags(0)
	tech := device.Default180()
	lib := device.NewLibrary(tech)
	cell := func(name string) *device.Cell {
		c, err := lib.Cell(name)
		if err != nil {
			log.Fatal(err)
		}
		return c
	}

	// 1. The receiver's noise-rejection curve: the pulse height, per
	//    width, at which the output glitch reaches half the supply.
	recv := cell("INVX2")
	curve, err := funcnoise.Immunity(recv, true, funcnoise.ImmunityOptions{Load: 15e-15})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("noise-rejection curve of %s (victim high, load 15 fF):\n", recv.Name)
	fmt.Printf("%-12s %-16s\n", "width(ps)", "critical Vp(V)")
	for _, p := range curve.Points {
		fmt.Printf("%-12.0f %-16.3f\n", p.Width*1e12, p.Height)
	}

	// 2. Sweep the coupling strength of a weakly held victim and watch
	//    the analysis flip from pass to fail.
	fmt.Printf("\ncoupling sweep (victim INVX1 held high, aggressor INVX16 falling):\n")
	fmt.Printf("%-14s %-10s %-12s %-12s %-8s\n", "coupling(fF)", "Vp(V)", "W(ps)", "glitch(mV)", "status")
	for _, cc := range []float64{20e-15, 50e-15, 90e-15, 140e-15} {
		net := rcnet.Build(rcnet.CoupledSpec{
			Victim: rcnet.LineSpec{Name: "v", Segments: 5, RTotal: 400, CGround: 30e-15},
			Aggressors: []rcnet.AggressorSpec{
				{Line: rcnet.LineSpec{Name: "a", Segments: 5, RTotal: 300, CGround: 25e-15},
					CCouple: cc, From: 0, To: 1},
			},
		})
		c := &delaynoise.Case{
			Net: net,
			Victim: delaynoise.DriverSpec{Cell: cell("INVX1"), InputSlew: 200e-12,
				OutputRising: true, InputStart: 200e-12},
			Aggressors: []delaynoise.DriverSpec{
				{Cell: cell("INVX16"), InputSlew: 60e-12, OutputRising: false, InputStart: 300e-12},
			},
			Receiver:     recv,
			ReceiverLoad: 15e-15,
		}
		res, err := funcnoise.Analyze(c, funcnoise.Options{FailFraction: 0.4})
		if err != nil {
			log.Fatal(err)
		}
		status := "pass"
		if res.Failed {
			status = "FAIL"
		}
		fmt.Printf("%-14.0f %-10.3f %-12.1f %-12.1f %-8s\n",
			cc*1e15, res.InputPulse.Height, res.InputPulse.Width*1e12,
			res.OutputGlitch*1e3, status)
	}
	fmt.Println("\nnarrow pulses need far more height than wide ones — the filtering that")
	fmt.Println("also shapes the worst-case aggressor alignment in the delay-noise flow.")
}
