// Prechar tables: build the paper's 8-point alignment table for a
// receiver gate and show how the predicted worst-case alignment compares
// with an exhaustive nonlinear search across off-corner conditions
// (a miniature of Figure 9).
package main

import (
	"fmt"
	"log"

	"repro/internal/align"
	"repro/internal/device"
	"repro/internal/waveform"
)

func main() {
	log.SetFlags(0)
	tech := device.Default180()
	lib := device.NewLibrary(tech)
	recv, err := lib.Cell("INVX2")
	if err != nil {
		log.Fatal(err)
	}

	// 1. Build the 8-point table: 2 slews x 2 widths x 2 heights, all at
	//    minimum receiver load.
	cfg := align.DefaultConfig(tech)
	tab, err := align.Precharacterize(recv, true, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("alignment table for %s (rising victim), %d characterization points:\n", recv.Name, tab.NumPoints())
	for si, slew := range []float64{tab.SlewMin, tab.SlewMax} {
		for wi, width := range []float64{tab.WidthMin, tab.WidthMax} {
			for hi, height := range []float64{tab.HeightMin, tab.HeightMax} {
				fmt.Printf("  slew %3.0f ps, width %3.0f ps, height %.2f V  ->  Va = %.3f V\n",
					slew*1e12, width*1e12, height, tab.Va[si][wi][hi])
			}
		}
	}

	// 2. Query the table at off-corner conditions and compare the delay
	//    noise at the predicted alignment with the exhaustive worst case.
	fmt.Printf("\n%-10s %-10s %-10s %-14s %-14s %-8s\n",
		"slew(ps)", "width(ps)", "height(V)", "exhaust(ps)", "predicted(ps)", "err(%)")
	for _, cond := range []struct{ slew, width, height float64 }{
		{200e-12, 100e-12, 0.25},
		{350e-12, 200e-12, 0.40},
		{500e-12, 80e-12, 0.55},
	} {
		noiseless := waveform.Ramp(200e-12, cond.slew, 0, tech.Vdd)
		noise := align.Pulse{Height: -cond.height, Width: cond.width}.Waveform()
		obj := align.Objective{Receiver: recv, Load: cfg.MinLoad, VictimRising: true}
		quiet, err := obj.OutputCross(noiseless)
		if err != nil {
			log.Fatal(err)
		}
		worst, err := obj.ExhaustiveWorst(noiseless, noise, 31)
		if err != nil {
			log.Fatal(err)
		}
		tp, err := tab.PredictPeakTime(noiseless, cond.slew, cond.width, cond.height, cfg.MinLoad)
		if err != nil {
			log.Fatal(err)
		}
		predOut, err := obj.OutputCross(align.NoisyInput(noiseless, noise, tp))
		if err != nil {
			log.Fatal(err)
		}
		exh := (worst.TOut - quiet) * 1e12
		prd := (predOut - quiet) * 1e12
		fmt.Printf("%-10.0f %-10.0f %-10.2f %-14.2f %-14.2f %-8.2f\n",
			cond.slew*1e12, cond.width*1e12, cond.height, exh, prd, 100*(1-prd/exh))
	}
	fmt.Println("\nthe 8-point table predicts the worst-case alignment within the paper's 10% bound")
}
