// Tree net: a branching victim net with two receivers, analyzed sink by
// sink. Each analysis places the receiver at one sink and loads the
// other sink with its receiver's input capacitance; the nearer sink sees
// less interconnect delay but the same coupled charge, so its relative
// delay noise is larger.
package main

import (
	"fmt"
	"log"

	"repro/internal/delaynoise"
	"repro/internal/device"
	"repro/internal/rcnet"
)

func main() {
	log.SetFlags(0)
	tech := device.Default180()
	lib := device.NewLibrary(tech)
	cell := func(name string) *device.Cell {
		c, err := lib.Cell(name)
		if err != nil {
			log.Fatal(err)
		}
		return c
	}

	tree := rcnet.BuildTree(rcnet.TreeSpec{
		Coupled: rcnet.CoupledSpec{
			Victim: rcnet.LineSpec{Name: "v", Segments: 8, RTotal: 500, CGround: 40e-15},
			Aggressors: []rcnet.AggressorSpec{
				{Line: rcnet.LineSpec{Name: "a", Segments: 8, RTotal: 350, CGround: 30e-15},
					CCouple: 35e-15, From: 0, To: 1},
			},
		},
		Branches: []rcnet.BranchSpec{
			{At: 0.4, Line: rcnet.LineSpec{Name: "b", Segments: 4, RTotal: 250, CGround: 15e-15}},
		},
	})
	recv := cell("INVX2")
	sinks := tree.Sinks()

	fmt.Printf("tree victim with %d sinks: %v\n\n", len(sinks), sinks)
	fmt.Printf("%-10s %-12s %-12s %-12s\n", "sink", "quiet(ps)", "noise(ps)", "pulse(V)")
	for i, sink := range sinks {
		extra := map[string]float64{}
		for j, other := range sinks {
			if j != i {
				extra[other] = recv.InputCap()
			}
		}
		c := &delaynoise.Case{
			Net: tree.CoupledNet,
			Victim: delaynoise.DriverSpec{Cell: cell("INVX2"), InputSlew: 350e-12,
				OutputRising: true, InputStart: 200e-12},
			Aggressors: []delaynoise.DriverSpec{
				{Cell: cell("INVX8"), InputSlew: 80e-12, OutputRising: false, InputStart: 450e-12},
			},
			Receiver:     recv,
			ReceiverLoad: 12e-15,
			Sink:         sink,
			ExtraLoads:   extra,
		}
		res, err := delaynoise.Analyze(c, delaynoise.Options{
			Hold: delaynoise.HoldTransient, Align: delaynoise.AlignExhaustive,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %-12.2f %-12.2f %-12.3f\n",
			sink, res.QuietCombinedDelay*1e12, res.DelayNoise*1e12, res.Pulse.Height)
	}
	fmt.Println("\neach sink is a separate analysis; a tool reports the worst per endpoint.")
}
