// STA windows: the timing-window interaction of the paper's Section 1
// (refs [8][9]). A three-net block is analyzed with the window/noise
// fixpoint: the aggressor of net2 is gated by net0's switching window,
// delay noise widens the windows, and the loop converges in a few
// iterations.
package main

import (
	"fmt"
	"log"

	"repro/internal/delaynoise"
	"repro/internal/device"
	"repro/internal/rcnet"
	"repro/internal/sta"
)

func main() {
	log.SetFlags(0)
	tech := device.Default180()
	lib := device.NewLibrary(tech)
	cell := func(name string) *device.Cell {
		c, err := lib.Cell(name)
		if err != nil {
			log.Fatal(err)
		}
		return c
	}
	mkCase := func(prefix, victim, agg, recv string) *delaynoise.Case {
		net := rcnet.Build(rcnet.CoupledSpec{
			Victim: rcnet.LineSpec{Name: prefix + ".v", Segments: 5, RTotal: 350, CGround: 35e-15},
			Aggressors: []rcnet.AggressorSpec{
				{Line: rcnet.LineSpec{Name: prefix + ".a", Segments: 5, RTotal: 250, CGround: 30e-15},
					CCouple: 28e-15, From: 0, To: 1},
			},
		})
		return &delaynoise.Case{
			Net: net,
			Victim: delaynoise.DriverSpec{Cell: cell(victim), InputSlew: 300e-12,
				OutputRising: true, InputStart: 200e-12},
			Aggressors: []delaynoise.DriverSpec{
				{Cell: cell(agg), InputSlew: 80e-12, OutputRising: false, InputStart: 400e-12},
			},
			Receiver:     cell(recv),
			ReceiverLoad: 10e-15,
		}
	}

	block := &sta.Block{Nets: []sta.NetDef{
		{
			Name: "n0", Case: mkCase("n0", "INVX2", "INVX8", "INVX2"),
			FanIn: -1, InputWindow: sta.Window{Lo: 200e-12, Hi: 320e-12},
			AggWindows: []int{-1},
		},
		{
			Name: "n1", Case: mkCase("n1", "INVX2", "INVX16", "INVX4"),
			FanIn: 0, AggWindows: []int{-1},
		},
		{
			Name: "n2", Case: mkCase("n2", "INVX4", "INVX16", "INVX2"),
			FanIn: 1, AggWindows: []int{0}, // gated by n0's window
		},
	}}

	res, err := sta.Analyze(block, sta.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("window/noise fixpoint: converged=%v after %d iterations (paper: very few needed)\n\n",
		res.Converged, res.Iterations)
	fmt.Printf("%-6s %-24s %-24s %-12s %-12s %-12s\n",
		"net", "in window (ps)", "out window (ps)", "base(ps)", "noise(ps)", "constrained")
	for _, n := range res.Nets {
		fmt.Printf("%-6s [%8.1f, %8.1f]     [%8.1f, %8.1f]     %-12.2f %-12.2f %v\n",
			n.Name, n.Window.Lo*1e12, n.Window.Hi*1e12,
			n.OutWindow.Lo*1e12, n.OutWindow.Hi*1e12,
			n.BaseDelay*1e12, n.DelayNoise*1e12, n.Constrained)
	}
}
